#include "util/flat_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "util/random.h"

namespace epfis {
namespace {

using PageMap = FlatHashMap<PageId, uint64_t, kInvalidPageId>;

TEST(FlatHashTest, InsertFindUpdateBasics) {
  PageMap map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(7), nullptr);

  auto [v1, inserted1] = map.TryEmplace(7, 100);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(*v1, 100u);
  EXPECT_EQ(map.size(), 1u);

  // A hit leaves the stored value untouched (try_emplace semantics).
  auto [v2, inserted2] = map.TryEmplace(7, 999);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 100u);
  EXPECT_EQ(map.size(), 1u);

  *map.Find(7) = 42;
  EXPECT_EQ(*map.Find(7), 42u);
}

TEST(FlatHashTest, KeyZeroIsARegularKey) {
  PageMap map;
  EXPECT_TRUE(map.TryEmplace(0, 11).second);
  ASSERT_NE(map.Find(0), nullptr);
  EXPECT_EQ(*map.Find(0), 11u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashTest, GrowsThroughManyRehashes) {
  PageMap map;  // Default capacity, forcing repeated doubling.
  constexpr uint32_t kN = 100'000;
  for (uint32_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(map.TryEmplace(k, uint64_t{k} * 3).second);
  }
  EXPECT_EQ(map.size(), kN);
  for (uint32_t k = 0; k < kN; ++k) {
    const uint64_t* v = map.Find(k);
    ASSERT_NE(v, nullptr) << k;
    ASSERT_EQ(*v, uint64_t{k} * 3) << k;
  }
  EXPECT_EQ(map.Find(kN), nullptr);
}

TEST(FlatHashTest, ReservePreventsPointerInvalidation) {
  PageMap map;
  map.Reserve(1000);
  size_t cap = map.capacity();
  uint64_t* first = map.TryEmplace(1, 1).first;
  for (uint32_t k = 2; k <= 1000; ++k) map.TryEmplace(k, k);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(*first, 1u);  // No rehash, pointer still valid.
}

TEST(FlatHashTest, ForEachVisitsEveryEntryOnce) {
  PageMap map;
  std::unordered_map<PageId, uint64_t> ref;
  Rng rng(5);
  for (int i = 0; i < 5'000; ++i) {
    PageId k = static_cast<PageId>(rng.NextBounded(2'000));
    map.TryEmplace(k, k + 1);
    ref.try_emplace(k, k + 1);
  }
  std::unordered_map<PageId, uint64_t> seen;
  map.ForEach([&seen](PageId k, uint64_t v) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate key " << k;
  });
  EXPECT_EQ(seen, ref);

  map.ForEachMutable([](PageId, uint64_t& v) { v *= 2; });
  map.ForEach([&ref](PageId k, uint64_t v) { EXPECT_EQ(v, ref[k] * 2); });
}

// The satellite property test: randomized insert/find workloads agree
// with std::unordered_map at every step, across key ranges that force
// heavy collisions (tiny universe) and steady growth (large universe).
TEST(FlatHashTest, MatchesUnorderedMapUnderRandomWorkloads) {
  for (uint32_t universe : {16u, 1'000u, 1u << 20}) {
    for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      PageMap map;
      std::unordered_map<PageId, uint64_t> ref;
      Rng rng(seed);
      for (int op = 0; op < 20'000; ++op) {
        PageId key = static_cast<PageId>(rng.NextBounded(universe));
        uint64_t roll = rng.NextBounded(3);
        if (roll == 0) {
          // Insert-if-absent.
          auto [v, inserted] = map.TryEmplace(key, static_cast<uint64_t>(op));
          auto [it, ref_inserted] = ref.try_emplace(key, static_cast<uint64_t>(op));
          ASSERT_EQ(inserted, ref_inserted);
          ASSERT_EQ(*v, it->second);
        } else if (roll == 1) {
          // Find.
          uint64_t* v = map.Find(key);
          auto it = ref.find(key);
          ASSERT_EQ(v != nullptr, it != ref.end());
          if (v != nullptr) {
            ASSERT_EQ(*v, it->second);
          }
        } else {
          // Update-if-present.
          uint64_t* v = map.Find(key);
          auto it = ref.find(key);
          ASSERT_EQ(v != nullptr, it != ref.end());
          if (v != nullptr) {
            *v = static_cast<uint64_t>(op) + 7;
            it->second = static_cast<uint64_t>(op) + 7;
          }
        }
        ASSERT_EQ(map.size(), ref.size());
      }
    }
  }
}

TEST(FlatHashTest, AdjacentKeysCollideGracefully) {
  // Sequential page ids are the common trace shape; make sure linear
  // probing over a dense key block stays correct through a rehash.
  PageMap map(4);
  for (uint32_t k = 100; k < 4'100; ++k) {
    ASSERT_TRUE(map.TryEmplace(k, k).second);
  }
  for (uint32_t k = 100; k < 4'100; ++k) {
    ASSERT_NE(map.Find(k), nullptr);
    ASSERT_EQ(*map.Find(k), k);
  }
  EXPECT_EQ(map.Find(99), nullptr);
  EXPECT_EQ(map.Find(4'100), nullptr);
}

TEST(FlatHashTest, EraseBasics) {
  PageMap map;
  EXPECT_FALSE(map.Erase(7));  // Absent key on an empty table.
  map.TryEmplace(7, 70);
  map.TryEmplace(8, 80);
  EXPECT_TRUE(map.Erase(7));
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.Find(8), nullptr);
  EXPECT_EQ(*map.Find(8), 80u);
  EXPECT_FALSE(map.Erase(7));  // Double erase is a no-op.
  // The slot is genuinely free again (no tombstone): re-insert works.
  EXPECT_TRUE(map.TryEmplace(7, 71).second);
  EXPECT_EQ(*map.Find(7), 71u);
}

TEST(FlatHashTest, EraseShiftsDisplacedRuns) {
  // Backward-shift deletion must keep displaced keys findable. A tiny
  // table plus a dense key block guarantees long probe runs, so erasing
  // from the middle of a run exercises the shift logic hard.
  PageMap map(4);
  for (uint32_t k = 0; k < 64; ++k) map.TryEmplace(k, k * 10);
  for (uint32_t k = 0; k < 64; k += 3) EXPECT_TRUE(map.Erase(k));
  for (uint32_t k = 0; k < 64; ++k) {
    if (k % 3 == 0) {
      EXPECT_EQ(map.Find(k), nullptr) << k;
    } else {
      ASSERT_NE(map.Find(k), nullptr) << k;
      EXPECT_EQ(*map.Find(k), k * 10) << k;
    }
  }
}

TEST(FlatHashTest, EraseMatchesUnorderedMapUnderRandomWorkloads) {
  // The insert/find fuzz above, extended with erases — the workload the
  // adaptive sampling eviction actually runs.
  for (uint32_t universe : {16u, 1'000u, 1u << 20}) {
    for (uint64_t seed : {4ULL, 5ULL}) {
      PageMap map;
      std::unordered_map<PageId, uint64_t> ref;
      Rng rng(seed);
      for (int op = 0; op < 20'000; ++op) {
        PageId key = static_cast<PageId>(rng.NextBounded(universe));
        uint64_t roll = rng.NextBounded(4);
        if (roll == 0) {
          auto [v, inserted] = map.TryEmplace(key, static_cast<uint64_t>(op));
          auto [it, ref_inserted] =
              ref.try_emplace(key, static_cast<uint64_t>(op));
          ASSERT_EQ(inserted, ref_inserted);
          ASSERT_EQ(*v, it->second);
        } else if (roll == 1) {
          ASSERT_EQ(map.Erase(key), ref.erase(key) > 0);
        } else {
          uint64_t* v = map.Find(key);
          auto it = ref.find(key);
          ASSERT_EQ(v != nullptr, it != ref.end());
          if (v != nullptr) {
            ASSERT_EQ(*v, it->second);
          }
        }
        ASSERT_EQ(map.size(), ref.size());
      }
      // Full sweep at the end: contents agree exactly.
      std::unordered_map<PageId, uint64_t> seen;
      map.ForEach([&seen](PageId k, uint64_t v) { seen.emplace(k, v); });
      ASSERT_EQ(seen, ref);
    }
  }
}

TEST(FlatHashTest, PrefetchIsSafeAnywhere) {
  PageMap map;
  map.Prefetch(123);  // Empty table.
  map.TryEmplace(1, 1);
  map.Prefetch(1);
  map.Prefetch(999'999);  // Absent key.
  EXPECT_EQ(map.size(), 1u);
}

}  // namespace
}  // namespace epfis
