#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace epfis {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksToCompletion) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
  auto g = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(g.get(), "ok");
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker that ran the throwing task is still alive.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++counter;
      });
    }
    // Destructor must run all 20 queued tasks before joining.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that each wait for the other prove two workers are live.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  auto rendezvous = [&arrived] {
    ++arrived;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (arrived.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  auto a = pool.Submit(rendezvous);
  auto b = pool.Submit(rendezvous);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace epfis
