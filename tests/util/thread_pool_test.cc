#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace epfis {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksToCompletion) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
  auto g = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(g.get(), "ok");
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker that ran the throwing task is still alive.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++counter;
      });
    }
    // Destructor must run all 20 queued tasks before joining.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that each wait for the other prove two workers are live.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  auto rendezvous = [&arrived] {
    ++arrived;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (arrived.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  auto a = pool.Submit(rendezvous);
  auto b = pool.Submit(rendezvous);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

// Holds the pool's single worker busy until released, so queue contents
// are deterministic while a test arranges overflow.
struct WorkerGate {
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};

  std::future<void> Occupy(ThreadPool& pool) {
    auto f = pool.Submit([this] {
      entered.store(true);
      while (!release.load()) std::this_thread::yield();
    });
    while (!entered.load()) std::this_thread::yield();
    return f;
  }
};

TEST(ThreadPoolBackpressureTest, RejectResolvesFutureWithoutRunning) {
  ThreadPool::Options options;
  options.max_queue = 1;
  options.overflow = ThreadPool::Overflow::kReject;
  ThreadPool pool(1, options);
  WorkerGate gate;
  auto busy = gate.Occupy(pool);

  std::atomic<int> ran{0};
  auto queued = pool.Submit([&ran] { ++ran; });   // Takes the one slot.
  auto rejected = pool.Submit([&ran] { ++ran; }); // Queue full: rejected.
  EXPECT_THROW(rejected.get(), PoolRejectedError);
  EXPECT_EQ(pool.rejected_tasks(), 1u);

  gate.release.store(true);
  busy.get();
  queued.get();
  EXPECT_EQ(ran.load(), 1);  // The rejected task never ran.
}

TEST(ThreadPoolBackpressureTest, ShedOldestDisplacesTheQueuedTask) {
  ThreadPool::Options options;
  options.max_queue = 1;
  options.overflow = ThreadPool::Overflow::kShedOldest;
  ThreadPool pool(1, options);
  WorkerGate gate;
  auto busy = gate.Occupy(pool);

  auto oldest = pool.Submit([] { return 1; });
  auto newest = pool.Submit([] { return 2; });  // Displaces `oldest`.
  EXPECT_THROW(oldest.get(), PoolRejectedError);
  EXPECT_EQ(pool.rejected_tasks(), 1u);

  gate.release.store(true);
  busy.get();
  EXPECT_EQ(newest.get(), 2);  // Freshest work wins.
}

TEST(ThreadPoolBackpressureTest, BlockWaitsForASlotAndThenRuns) {
  ThreadPool::Options options;
  options.max_queue = 1;
  options.overflow = ThreadPool::Overflow::kBlock;
  ThreadPool pool(1, options);
  WorkerGate gate;
  auto busy = gate.Occupy(pool);

  auto queued = pool.Submit([] { return 1; });
  // The next Submit must block until the worker frees the slot; release
  // the gate from another thread after a short delay.
  std::thread releaser([&gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    gate.release.store(true);
  });
  auto blocked = pool.Submit([] { return 2; });
  releaser.join();
  busy.get();
  EXPECT_EQ(queued.get(), 1);
  EXPECT_EQ(blocked.get(), 2);
  EXPECT_EQ(pool.rejected_tasks(), 0u);
}

TEST(ThreadPoolShutdownTest, NonDrainingDestructorCancelsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool::Options options;
    options.drain_on_shutdown = false;
    ThreadPool pool(1, options);
    WorkerGate gate;
    auto busy = gate.Occupy(pool);
    for (int i = 0; i < 8; ++i) {
      futures.push_back(pool.Submit([&ran] { ++ran; }));
    }
    gate.release.store(true);
    busy.get();
    // Destructor: whatever is still queued when the workers stop is
    // abandoned, not run.
  }
  int cancelled = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const TaskCancelledError&) {
      ++cancelled;
    }
  }
  EXPECT_EQ(ran.load() + cancelled, 8);
}

TEST(ThreadPoolShutdownTest, TenThousandQueuedTasksDestructPromptly) {
  // Regression: a non-draining destructor must abandon a deep queue in
  // about the time it takes to resolve 10k promises — not run them.
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  futures.reserve(10000);
  auto begin = std::chrono::steady_clock::now();
  {
    ThreadPool::Options options;
    options.drain_on_shutdown = false;
    ThreadPool pool(1, options);
    WorkerGate gate;
    auto busy = gate.Occupy(pool);
    for (int i = 0; i < 10000; ++i) {
      futures.push_back(pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      }));
    }
    gate.release.store(true);
    busy.get();
  }
  auto elapsed = std::chrono::steady_clock::now() - begin;
  // Draining would take 10k+ milliseconds; abandoning is far under the
  // generous bound (kept loose for sanitizer builds).
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  int cancelled = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const TaskCancelledError&) {
      ++cancelled;
    }
  }
  EXPECT_EQ(ran.load() + cancelled, 10000);
  EXPECT_GT(cancelled, 0);
}

TEST(ThreadPoolShutdownTest, DrainingDestructorStillRunsEverything) {
  // The default policy is unchanged by the backpressure rework.
  std::atomic<int> ran{0};
  {
    ThreadPool::Options options;
    options.max_queue = 4;
    options.overflow = ThreadPool::Overflow::kBlock;
    ThreadPool pool(2, options);
    for (int i = 0; i < 50; ++i) pool.Submit([&ran] { ++ran; });
  }
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace epfis
