#include "util/crc32c.h"

#include <string>

#include <gtest/gtest.h>

namespace epfis {
namespace {

TEST(Crc32cTest, KnownCheckValue) {
  // The standard CRC-32C check value: CRC("123456789") = 0xE3069283.
  EXPECT_EQ(Crc32c(std::string_view("123456789")), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(std::string_view("")), 0u);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, IncrementalSeedingMatchesOneShot) {
  std::string data = "name=ix_orders\ntable_pages=100\nknots=1:2,3:4\n";
  uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t part = Crc32c(data.data(), split);
    uint32_t joined = Crc32c(data.data() + split, data.size() - split, part);
    EXPECT_EQ(joined, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum) {
  std::string data(64, 'x');
  uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); i += 7) {
    std::string tampered = data;
    tampered[i] ^= 0x01;
    EXPECT_NE(Crc32c(tampered.data(), tampered.size()), clean)
        << "flip at byte " << i;
  }
}

TEST(Crc32cTest, StringViewOverloadMatchesPointerForm) {
  std::string data = "catalog entry body";
  EXPECT_EQ(Crc32c(std::string_view(data)), Crc32c(data.data(), data.size()));
}

}  // namespace
}  // namespace epfis
