#include "util/piecewise.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.h"

namespace epfis {
namespace {

std::vector<Knot> LinePoints(double slope, double intercept, int n) {
  std::vector<Knot> pts;
  for (int i = 0; i < n; ++i) {
    double x = static_cast<double>(i);
    pts.push_back(Knot{x, slope * x + intercept});
  }
  return pts;
}

TEST(PiecewiseLinearTest, RejectsBadKnots) {
  EXPECT_FALSE(PiecewiseLinear::FromKnots({}).ok());
  EXPECT_FALSE(PiecewiseLinear::FromKnots({{0, 0}}).ok());
  EXPECT_FALSE(PiecewiseLinear::FromKnots({{1, 0}, {1, 5}}).ok());
  EXPECT_FALSE(PiecewiseLinear::FromKnots({{2, 0}, {1, 5}}).ok());
}

TEST(PiecewiseLinearTest, InterpolatesWithinRange) {
  auto curve = PiecewiseLinear::FromKnots({{0, 0}, {10, 100}, {20, 100}});
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR(curve->Eval(0), 0, 1e-12);
  EXPECT_NEAR(curve->Eval(5), 50, 1e-12);
  EXPECT_NEAR(curve->Eval(10), 100, 1e-12);
  EXPECT_NEAR(curve->Eval(15), 100, 1e-12);
  EXPECT_NEAR(curve->Eval(20), 100, 1e-12);
}

TEST(PiecewiseLinearTest, ExtrapolatesWithEndSegments) {
  auto curve = PiecewiseLinear::FromKnots({{0, 0}, {10, 100}, {20, 100}});
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR(curve->Eval(-5), -50, 1e-12);  // First segment slope 10.
  EXPECT_NEAR(curve->Eval(30), 100, 1e-12);  // Last segment slope 0.
}

TEST(PiecewiseLinearTest, NumSegments) {
  auto curve = PiecewiseLinear::FromKnots({{0, 0}, {1, 1}, {2, 0}, {3, 1}});
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->num_segments(), 3u);
  EXPECT_EQ(curve->min_x(), 0);
  EXPECT_EQ(curve->max_x(), 3);
}

TEST(FitPiecewiseTest, RejectsBadInput) {
  EXPECT_FALSE(FitPiecewiseLinear({{0, 0}}, 3).ok());
  EXPECT_FALSE(FitPiecewiseLinear(LinePoints(1, 0, 5), 0).ok());
  EXPECT_FALSE(FitPiecewiseLinear({{0, 0}, {0, 1}, {1, 2}}, 2).ok());
}

TEST(FitPiecewiseTest, StraightLineNeedsOneSegment) {
  auto fit = FitPiecewiseLinear(LinePoints(2.0, 1.0, 20), 6);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(SumSquaredResidual(*fit, LinePoints(2.0, 1.0, 20)), 0.0, 1e-9);
  // Optimal fit should not waste knots on a straight line.
  EXPECT_LE(fit->num_segments(), 2u);
}

TEST(FitPiecewiseTest, RecoversExactPiecewiseShape) {
  // A "V" with breakpoint at x=10 needs exactly 2 segments.
  std::vector<Knot> pts;
  for (int i = 0; i <= 20; ++i) {
    double x = i;
    double y = (i <= 10) ? 100.0 - 10.0 * x : 10.0 * (x - 10.0);
    pts.push_back(Knot{x, y});
  }
  auto fit = FitPiecewiseLinear(pts, 2);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(SumSquaredResidual(*fit, pts), 0.0, 1e-9);
  EXPECT_NEAR(fit->Eval(10), 0.0, 1e-9);
}

TEST(FitPiecewiseTest, EndpointsAlwaysKnots) {
  std::vector<Knot> pts;
  Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    pts.push_back(Knot{static_cast<double>(i), rng.NextDouble() * 100});
  }
  auto fit = FitPiecewiseLinear(pts, 4);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->knots().front().x, pts.front().x);
  EXPECT_EQ(fit->knots().front().y, pts.front().y);
  EXPECT_EQ(fit->knots().back().x, pts.back().x);
  EXPECT_EQ(fit->knots().back().y, pts.back().y);
}

TEST(FitPiecewiseTest, MoreSegmentsNeverWorse) {
  std::vector<Knot> pts;
  for (int i = 0; i <= 40; ++i) {
    double x = i;
    pts.push_back(Knot{x, 1000.0 / (1.0 + x) + std::sin(x) * 5});
  }
  double prev = 1e300;
  for (int k = 1; k <= 8; ++k) {
    auto fit = FitPiecewiseLinear(pts, k);
    ASSERT_TRUE(fit.ok());
    double sse = SumSquaredResidual(*fit, pts);
    EXPECT_LE(sse, prev + 1e-6) << "k=" << k;
    prev = sse;
  }
}

TEST(FitPiecewiseTest, OptimalBeatsOrMatchesUniform) {
  std::vector<Knot> pts;
  for (int i = 0; i <= 50; ++i) {
    double x = i;
    // Sharp hyperbolic decay: knot placement matters a lot.
    pts.push_back(Knot{x, 10000.0 / (1.0 + x)});
  }
  auto optimal = FitPiecewiseLinear(pts, 5);
  auto uniform = FitPiecewiseUniform(pts, 5);
  ASSERT_TRUE(optimal.ok());
  ASSERT_TRUE(uniform.ok());
  EXPECT_LE(SumSquaredResidual(*optimal, pts),
            SumSquaredResidual(*uniform, pts) + 1e-6);
}

TEST(FitPiecewiseTest, FewPointsUsesAllAsKnots) {
  auto fit = FitPiecewiseLinear({{0, 1}, {1, 5}, {2, 2}}, 6);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->num_segments(), 2u);
  EXPECT_NEAR(fit->Eval(1), 5, 1e-12);
}

TEST(FitPiecewiseTest, MaxAbsResidualConsistent) {
  std::vector<Knot> pts = LinePoints(1.0, 0.0, 10);
  pts[5].y += 3.0;  // One outlier.
  auto fit = FitPiecewiseLinear(pts, 1);
  ASSERT_TRUE(fit.ok());
  double max_resid = MaxAbsResidual(*fit, pts);
  EXPECT_GT(max_resid, 0.0);
  EXPECT_LE(max_resid, 3.0 + 1e-9);
}

TEST(FitPiecewiseUniformTest, ProducesRequestedSegmentsOnDenseInput) {
  auto fit = FitPiecewiseUniform(LinePoints(1, 0, 41), 4);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->num_segments(), 4u);
}

}  // namespace
}  // namespace epfis
