#include "util/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace epfis {
namespace {

TEST(CancellationTokenTest, NullTokenNeverCancels) {
  CancellationToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  token.Cancel();  // No-op, not a crash.
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTokenTest, CancelIsSticky) {
  CancellationToken token = CancellationToken::Create();
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // Idempotent.
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, CopiesShareTheFlag) {
  CancellationToken a = CancellationToken::Create();
  CancellationToken b = a;
  b.Cancel();
  EXPECT_TRUE(a.cancelled());
}

TEST(CancellationTokenTest, ChildObservesParentNotViceVersa) {
  CancellationToken parent = CancellationToken::Create();
  CancellationToken child = parent.Child();
  CancellationToken grandchild = child.Child();

  child.Cancel();
  EXPECT_FALSE(parent.cancelled());
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(grandchild.cancelled());

  CancellationToken other_child = parent.Child();
  EXPECT_FALSE(other_child.cancelled());
  parent.Cancel();
  EXPECT_TRUE(other_child.cancelled());
}

TEST(CancellationTokenTest, ChildOfNullIsARoot) {
  CancellationToken null_token;
  CancellationToken child = null_token.Child();
  EXPECT_TRUE(child.valid());
  EXPECT_FALSE(child.cancelled());
  child.Cancel();
  EXPECT_TRUE(child.cancelled());
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining().count(), int64_t{1} << 60);
}

TEST(DeadlineTest, ExpiresOnTheSteadyClock) {
  Deadline d = Deadline::After(std::chrono::nanoseconds(0));
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining().count(), 0);

  Deadline far = Deadline::After(std::chrono::hours(24));
  EXPECT_FALSE(far.expired());
  EXPECT_GT(far.remaining().count(), 0);
}

TEST(DeadlineTest, HugeDurationSaturatesToInfinite) {
  Deadline d = Deadline::After(std::chrono::nanoseconds(INT64_MAX));
  EXPECT_TRUE(d.infinite());
}

TEST(CheckCancelTest, ReportsCancelledAndDeadlineWithContext) {
  CancellationToken token = CancellationToken::Create();
  EXPECT_TRUE(CheckCancel(token, Deadline(), "work").ok());

  token.Cancel();
  Status st = CheckCancel(token, Deadline(), "shard 3");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("shard 3"), std::string::npos);

  Status dl = CheckCancel(CancellationToken(), Deadline::AfterMillis(0),
                          "merge");
  EXPECT_EQ(dl.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(dl.message().find("merge"), std::string::npos);
}

TEST(CheckCancelTest, TokenWinsOverExpiredDeadline) {
  CancellationToken token = CancellationToken::Create();
  token.Cancel();
  Status st = CheckCancel(token, Deadline::AfterMillis(0), "x");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

TEST(RetryWithBackoffTest, TransientFailuresRetryUntilSuccess) {
  BackoffOptions options;
  options.max_attempts = 5;
  options.initial = std::chrono::microseconds(10);
  int calls = 0;
  Status st = RetryWithBackoff(
      options,
      [&]() -> Status {
        ++calls;
        if (calls < 3) return Status::IoError("flaky");
        return Status::Ok();
      },
      "open");
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryWithBackoffTest, NonTransientFailsImmediately) {
  BackoffOptions options;
  options.max_attempts = 5;
  int calls = 0;
  Status st = RetryWithBackoff(
      options,
      [&]() -> Status {
        ++calls;
        return Status::Corruption("bad file");
      },
      "open");
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);
}

TEST(RetryWithBackoffTest, ExhaustionReturnsLastTransientStatus) {
  BackoffOptions options;
  options.max_attempts = 3;
  options.initial = std::chrono::microseconds(1);
  int calls = 0;
  Status st = RetryWithBackoff(
      options,
      [&]() -> Status {
        ++calls;
        return Status::Unavailable("still down");
      },
      "publish");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
}

TEST(RetryWithBackoffTest, PreCancelledTokenSkipsTheFirstAttempt) {
  CancellationToken token = CancellationToken::Create();
  token.Cancel();
  BackoffOptions options;
  options.cancel = token;
  int calls = 0;
  Status st = RetryWithBackoff(
      options,
      [&]() -> Status {
        ++calls;
        return Status::Ok();
      },
      "open");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 0);
}

TEST(RetryWithBackoffTest, CancelDuringBackoffSleepInterrupts) {
  CancellationToken token = CancellationToken::Create();
  BackoffOptions options;
  options.max_attempts = 2;
  options.initial = std::chrono::seconds(30);  // Sliced sleep must not wait.
  options.cancel = token;
  std::atomic<bool> started{false};
  std::thread firer([&] {
    while (!started.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.Cancel();
  });
  auto begin = std::chrono::steady_clock::now();
  Status st = RetryWithBackoff(
      options,
      [&]() -> Status {
        started.store(true);
        return Status::IoError("transient");
      },
      "open");
  auto elapsed = std::chrono::steady_clock::now() - begin;
  firer.join();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(RetryWithBackoffTest, DeadlineBoundsTheWholeRetryLoop) {
  BackoffOptions options;
  options.max_attempts = 100;
  options.initial = std::chrono::milliseconds(5);
  options.multiplier = 1.0;
  options.deadline = Deadline::AfterMillis(20);
  int calls = 0;
  Status st = RetryWithBackoff(
      options,
      [&]() -> Status {
        ++calls;
        return Status::IoError("down");
      },
      "open");
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(calls, 100);
}

}  // namespace
}  // namespace epfis
