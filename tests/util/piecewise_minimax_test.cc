#include <gtest/gtest.h>

#include <cmath>

#include "util/piecewise.h"
#include "util/random.h"

namespace epfis {
namespace {

TEST(MinimaxFitTest, RejectsBadInput) {
  EXPECT_FALSE(FitPiecewiseLinearMinimax({{0, 0}}, 3).ok());
  EXPECT_FALSE(FitPiecewiseLinearMinimax({{0, 0}, {1, 1}}, 0).ok());
}

TEST(MinimaxFitTest, ExactOnPiecewiseShapes) {
  std::vector<Knot> pts;
  for (int i = 0; i <= 20; ++i) {
    double x = i;
    double y = (i <= 10) ? 100.0 - 10.0 * x : 10.0 * (x - 10.0);
    pts.push_back(Knot{x, y});
  }
  auto fit = FitPiecewiseLinearMinimax(pts, 2);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(MaxAbsResidual(*fit, pts), 0.0, 1e-9);
}

TEST(MinimaxFitTest, NeverWorseMaxErrorThanLeastSquares) {
  // Minimax optimizes exactly the max-residual criterion, so within the
  // same knot family it can only match or beat least-squares on it.
  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Knot> pts;
    double y = 10000.0;
    for (int i = 0; i < 40; ++i) {
      y *= 0.85 + 0.1 * rng.NextDouble();
      pts.push_back(Knot{static_cast<double>(i * 37 + 12), y});
    }
    for (int k : {2, 4, 6}) {
      auto minimax = FitPiecewiseLinearMinimax(pts, k);
      auto lsq = FitPiecewiseLinear(pts, k);
      ASSERT_TRUE(minimax.ok());
      ASSERT_TRUE(lsq.ok());
      EXPECT_LE(MaxAbsResidual(*minimax, pts),
                MaxAbsResidual(*lsq, pts) + 1e-9)
          << "trial " << trial << " k " << k;
    }
  }
}

TEST(MinimaxFitTest, MoreSegmentsNeverWorse) {
  std::vector<Knot> pts;
  for (int i = 0; i <= 50; ++i) {
    double x = i;
    pts.push_back(Knot{x, 5000.0 / (1.0 + 0.3 * x)});
  }
  double prev = 1e300;
  for (int k = 1; k <= 8; ++k) {
    auto fit = FitPiecewiseLinearMinimax(pts, k);
    ASSERT_TRUE(fit.ok());
    double err = MaxAbsResidual(*fit, pts);
    EXPECT_LE(err, prev + 1e-9) << "k=" << k;
    prev = err;
  }
}

TEST(MinimaxFitTest, EndpointsPreserved) {
  std::vector<Knot> pts;
  Rng rng(73);
  for (int i = 0; i < 25; ++i) {
    pts.push_back(Knot{static_cast<double>(i), rng.NextDouble() * 50});
  }
  auto fit = FitPiecewiseLinearMinimax(pts, 3);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->knots().front().x, pts.front().x);
  EXPECT_EQ(fit->knots().back().x, pts.back().x);
}

}  // namespace
}  // namespace epfis
