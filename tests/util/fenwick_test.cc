#include "util/fenwick.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace epfis {
namespace {

TEST(FenwickTest, EmptyTreeSumsToZero) {
  FenwickTree tree(10);
  EXPECT_EQ(tree.PrefixSum(9), 0);
  EXPECT_EQ(tree.Total(), 0);
}

TEST(FenwickTest, PointUpdatesAndPrefixSums) {
  FenwickTree tree(8);
  tree.Add(0, 3);
  tree.Add(3, 5);
  tree.Add(7, -2);
  EXPECT_EQ(tree.PrefixSum(0), 3);
  EXPECT_EQ(tree.PrefixSum(2), 3);
  EXPECT_EQ(tree.PrefixSum(3), 8);
  EXPECT_EQ(tree.PrefixSum(6), 8);
  EXPECT_EQ(tree.PrefixSum(7), 6);
  EXPECT_EQ(tree.Total(), 6);
}

TEST(FenwickTest, RangeSum) {
  FenwickTree tree(10);
  for (size_t i = 0; i < 10; ++i) tree.Add(i, static_cast<int64_t>(i));
  EXPECT_EQ(tree.RangeSum(0, 9), 45);
  EXPECT_EQ(tree.RangeSum(3, 5), 3 + 4 + 5);
  EXPECT_EQ(tree.RangeSum(5, 5), 5);
  EXPECT_EQ(tree.RangeSum(6, 3), 0);  // Inverted range.
}

TEST(FenwickTest, MatchesNaiveOnRandomWorkload) {
  const size_t n = 200;
  FenwickTree tree(n);
  std::vector<int64_t> naive(n, 0);
  Rng rng(21);
  for (int op = 0; op < 2000; ++op) {
    size_t i = static_cast<size_t>(rng.NextBounded(n));
    int64_t delta = rng.NextInRange(-5, 5);
    tree.Add(i, delta);
    naive[i] += delta;

    size_t lo = static_cast<size_t>(rng.NextBounded(n));
    size_t hi = static_cast<size_t>(rng.NextBounded(n));
    if (lo > hi) std::swap(lo, hi);
    int64_t expected = 0;
    for (size_t j = lo; j <= hi; ++j) expected += naive[j];
    ASSERT_EQ(tree.RangeSum(lo, hi), expected) << "op " << op;
  }
}

TEST(FenwickTest, ResizePreservesContents) {
  FenwickTree tree(4);
  tree.Add(0, 1);
  tree.Add(3, 7);
  tree.Resize(16);
  EXPECT_EQ(tree.size(), 16u);
  EXPECT_EQ(tree.RangeSum(0, 3), 8);
  tree.Add(10, 2);
  EXPECT_EQ(tree.Total(), 10);
}

TEST(FenwickTest, ResizeSmallerIsNoOp) {
  FenwickTree tree(8);
  tree.Add(5, 5);
  tree.Resize(2);
  EXPECT_EQ(tree.size(), 8u);
  EXPECT_EQ(tree.RangeSum(5, 5), 5);
}

TEST(FenwickTest, MovePairMatchesAddPair) {
  // MovePair(from, to) must leave the *stored tree* identical to
  // Add(from, -1) + Add(to, +1) — not just the same prefix sums, since the
  // merge path mixes MovePair with later Adds and queries at every index.
  const size_t n = 64;
  Rng rng(31);
  FenwickTree fused(n);
  FenwickTree plain(n);
  // Seed both with the same random contents.
  for (int i = 0; i < 100; ++i) {
    size_t at = static_cast<size_t>(rng.NextBounded(n));
    int64_t delta = rng.NextInRange(-3, 3);
    fused.Add(at, delta);
    plain.Add(at, delta);
  }
  for (int op = 0; op < 500; ++op) {
    size_t from = static_cast<size_t>(rng.NextBounded(n));
    size_t to = op % 7 == 0 ? from  // Exercise the no-op case too.
                            : static_cast<size_t>(rng.NextBounded(n));
    fused.MovePair(from, to);
    plain.Add(from, -1);
    plain.Add(to, +1);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(fused.PrefixSum(i), plain.PrefixSum(i))
          << "op " << op << " from " << from << " to " << to << " i " << i;
    }
  }
}

TEST(FenwickTest, ResizePreservesRandomContents) {
  // The O(n) rebuild must preserve every point value across repeated
  // geometric growth, interleaved with updates — the exact usage pattern
  // of the streaming merge's live axis.
  Rng rng(47);
  size_t n = 3;
  FenwickTree tree(n);
  std::vector<int64_t> naive(n, 0);
  for (int round = 0; round < 6; ++round) {
    for (int op = 0; op < 60; ++op) {
      size_t i = static_cast<size_t>(rng.NextBounded(n));
      int64_t delta = rng.NextInRange(-4, 4);
      tree.Add(i, delta);
      naive[i] += delta;
    }
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(tree.RangeSum(i, i), naive[i]) << "round " << round;
    }
    n = n * 2 + 1;
    tree.Resize(n);
    naive.resize(n, 0);
    ASSERT_EQ(tree.size(), n);
  }
}

TEST(FenwickTest, AssignPrefixOnesBuildsDensePrefix) {
  FenwickTree tree(4);
  tree.Add(2, 9);  // Old contents must be discarded.
  for (size_t ones : {0u, 1u, 5u, 12u}) {
    tree.AssignPrefixOnes(ones, 12);
    EXPECT_EQ(tree.size(), 12u);
    EXPECT_EQ(tree.Total(), static_cast<int64_t>(ones)) << ones;
    for (size_t i = 0; i < 12; ++i) {
      EXPECT_EQ(tree.RangeSum(i, i), i < ones ? 1 : 0)
          << "ones=" << ones << " i=" << i;
      EXPECT_EQ(tree.PrefixSum(i),
                static_cast<int64_t>(std::min(i + 1, ones)))
          << "ones=" << ones << " i=" << i;
    }
    // Updates after the bulk build behave like ordinary Adds.
    if (ones > 0) {
      tree.Add(0, -1);
      EXPECT_EQ(tree.Total(), static_cast<int64_t>(ones) - 1);
    }
  }
}

}  // namespace
}  // namespace epfis
