// Cross-module edge cases and adversarial traces that do not fit a single
// module's test file.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "buffer/clock_replacer.h"
#include "buffer/stack_distance.h"
#include "epfis/lru_fit.h"
#include "exec/index_scan.h"
#include "workload/data_gen.h"
#include "workload/gwl.h"

namespace epfis {
namespace {

TEST(AdversarialTraceTest, SequentialFloodingThrashesBelowLoopLength) {
  // The classic LRU pathology: a loop over L distinct pages misses on
  // every reference for any buffer B < L, and only cold-misses for B >= L.
  const uint32_t kLoop = 100;
  const int kRounds = 20;
  StackDistanceSimulator sim;
  for (int r = 0; r < kRounds; ++r) {
    for (PageId p = 0; p < kLoop; ++p) sim.Access(p);
  }
  for (uint64_t b : {1ULL, 50ULL, 99ULL}) {
    EXPECT_EQ(sim.Fetches(b), static_cast<uint64_t>(kLoop) * kRounds)
        << "b=" << b;
  }
  EXPECT_EQ(sim.Fetches(kLoop), kLoop);
  EXPECT_EQ(sim.Fetches(kLoop + 50), kLoop);
}

TEST(AdversarialTraceTest, LruFitCapturesTheCliff) {
  // LRU-Fit on the flooding trace must reproduce the cliff at B = L in its
  // fitted curve (modulo the sampled schedule's resolution).
  const uint32_t kLoop = 400;
  std::vector<PageId> trace;
  for (int r = 0; r < 10; ++r) {
    for (PageId p = 0; p < kLoop; ++p) trace.push_back(p);
  }
  auto stats = RunLruFit(trace, /*table_pages=*/kLoop, /*distinct=*/40,
                         "flood");
  ASSERT_TRUE(stats.ok());
  // Below the loop: close to N; at/above: close to the loop length.
  EXPECT_GT(stats->FullScanFetches(kLoop / 2), 0.8 * 4000.0);
  EXPECT_NEAR(stats->FullScanFetches(kLoop), 400.0, 40.0);
  EXPECT_NEAR(stats->clustering, 0.0, 0.05);
}

TEST(KeyRangeScanTest, ExclusiveBoundsRespectedByIndexScan) {
  SyntheticSpec spec;
  spec.num_records = 2000;
  spec.num_distinct = 100;
  spec.records_per_page = 20;
  spec.seed = 151;
  auto dataset = GenerateSynthetic(spec);
  ASSERT_TRUE(dataset.ok());

  KeyRange open{10, /*lo_inclusive=*/false, 20, /*hi_inclusive=*/false};
  auto pool = (*dataset)->MakeDataPool(50);
  auto result = RunIndexScan(*(*dataset)->index(), *(*dataset)->table(),
                             pool.get(), open);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entries_examined, (*dataset)->RecordsInRange(11, 19));

  KeyRange half_open{std::nullopt, true, 5, false};
  auto pool2 = (*dataset)->MakeDataPool(50);
  auto result2 = RunIndexScan(*(*dataset)->index(), *(*dataset)->table(),
                              pool2.get(), half_open);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->entries_examined, (*dataset)->RecordsInRange(1, 4));
}

TEST(BufferPoolPolicyTest, WorksWithClockReplacer) {
  DiskManager disk;
  BufferPool pool(&disk, 4, std::make_unique<ClockReplacer>());
  std::vector<PageId> pids;
  for (int i = 0; i < 12; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->mutable_data()[0] = static_cast<char>(i);
    pids.push_back(guard->page_id());
  }
  // Everything written is recoverable despite evictions.
  for (int i = 0; i < 12; ++i) {
    auto guard = pool.FetchPage(pids[i]);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], static_cast<char>(i));
  }
  EXPECT_GT(pool.stats().evictions, 0u);
}

TEST(GwlSmokeTest, AllEightColumnsSynthesizeAtTinyScale) {
  GwlOptions options;
  options.scale = 0.05;
  options.seed = 3;
  options.tolerance = 0.05;
  for (const GwlColumnSpec& column : GwlColumns()) {
    auto synthesis = SynthesizeGwlColumn(column, options);
    ASSERT_TRUE(synthesis.ok()) << column.name;
    EXPECT_GT(synthesis->dataset->num_records(), 0u) << column.name;
    ASSERT_TRUE(synthesis->dataset->index()->CheckIntegrity().ok())
        << column.name;
    // C in [0,1] and within a loose band of the target (tiny scales are
    // noisy; the bench at real scale asserts tighter).
    EXPECT_GE(synthesis->measured_c, 0.0);
    EXPECT_LE(synthesis->measured_c, 1.0);
    EXPECT_NEAR(synthesis->measured_c, column.target_clustering, 0.25)
        << column.name;
  }
}

TEST(DatasetSecondaryTest, SecondaryColumnUniformAndIndexed) {
  SyntheticSpec spec;
  spec.num_records = 6000;
  spec.num_distinct = 100;
  spec.secondary_distinct = 30;
  spec.records_per_page = 20;
  spec.seed = 161;
  auto dataset = GenerateSynthetic(spec);
  ASSERT_TRUE(dataset.ok());
  ASSERT_NE((*dataset)->index2(), nullptr);
  EXPECT_EQ((*dataset)->index2()->num_entries(), 6000u);
  ASSERT_TRUE((*dataset)->index2()->CheckIntegrity().ok());

  const auto& counts = (*dataset)->secondary_counts();
  ASSERT_EQ(counts.size(), 30u);
  uint64_t total = 0;
  for (uint64_t c : counts) {
    total += c;
    // Uniform-ish: each value ~200 records.
    EXPECT_GT(c, 120u);
    EXPECT_LT(c, 300u);
  }
  EXPECT_EQ(total, 6000u);
  EXPECT_EQ((*dataset)->SecondaryRecordsInRange(1, 30), 6000u);

  // Without a secondary column there is no second index.
  spec.secondary_distinct = 0;
  auto plain = GenerateSynthetic(spec);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*plain)->index2(), nullptr);
}

TEST(StatsConsistencyTest, PagesAccessedEqualsDistinctTracePages) {
  SyntheticSpec spec;
  spec.num_records = 4000;
  spec.num_distinct = 100;
  spec.records_per_page = 20;
  spec.window_fraction = 0.3;
  spec.seed = 171;
  auto dataset = GenerateSynthetic(spec);
  ASSERT_TRUE(dataset.ok());
  auto trace = (*dataset)->FullIndexPageTrace().value();
  auto stats = RunLruFit(trace, (*dataset)->num_pages(),
                         (*dataset)->num_distinct(), "x")
                   .value();
  std::set<PageId> distinct(trace.begin(), trace.end());
  EXPECT_EQ(stats.pages_accessed, distinct.size());
  // Every data page holds at least one record here, so A == T.
  EXPECT_EQ(stats.pages_accessed, (*dataset)->num_pages());
}

}  // namespace
}  // namespace epfis
