#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/dc.h"
#include "baselines/estimator.h"
#include "baselines/ml.h"
#include "baselines/naive.h"
#include "baselines/ot.h"
#include "baselines/sd.h"
#include "util/formulas.h"

namespace epfis {
namespace {

// A perfectly clustered index: key i on page i/10, 10 records per key
// sequence page.
std::vector<KeyPageRef> ClusteredRefs(int pages, int per_page) {
  std::vector<KeyPageRef> refs;
  int64_t key = 0;
  for (int p = 0; p < pages; ++p) {
    for (int r = 0; r < per_page; ++r) {
      refs.push_back(KeyPageRef{key++, static_cast<PageId>(p)});
    }
  }
  return refs;
}

// A worst-case unclustered index: consecutive keys alternate pages far
// apart, so every reference jumps.
std::vector<KeyPageRef> AlternatingRefs(int pages, int rounds) {
  std::vector<KeyPageRef> refs;
  int64_t key = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int p = 0; p < pages; ++p) {
      refs.push_back(KeyPageRef{key++, static_cast<PageId>(p)});
    }
  }
  return refs;
}

TEST(CollectBaselineStatsTest, RejectsEmptyAndUnsorted) {
  EXPECT_FALSE(CollectBaselineTraceStats({}, 10).ok());
  std::vector<KeyPageRef> bad = {{5, 0}, {3, 1}};
  EXPECT_FALSE(CollectBaselineTraceStats(bad, 10).ok());
}

TEST(CollectBaselineStatsTest, CountsBasics) {
  auto refs = ClusteredRefs(10, 10);
  auto stats = CollectBaselineTraceStats(refs, 10);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->table_pages, 10u);
  EXPECT_EQ(stats->table_records, 100u);
  EXPECT_EQ(stats->distinct_keys, 100u);
  // Clustered: J1 == T (each page fetched once even with 1 buffer).
  EXPECT_EQ(stats->j1, 10u);
  EXPECT_EQ(stats->j3, 10u);
  // Every key's first page >= previous key's last page.
  EXPECT_EQ(stats->cluster_counter, 100u);
}

TEST(CollectBaselineStatsTest, AlternatingWorstCase) {
  auto refs = AlternatingRefs(10, 10);
  auto stats = CollectBaselineTraceStats(refs, 10);
  ASSERT_TRUE(stats.ok());
  // Round-robin over 10 pages: B=1 and B=3 both miss everywhere.
  EXPECT_EQ(stats->j1, 100u);
  EXPECT_EQ(stats->j3, 100u);
}

TEST(CollectBaselineStatsTest, DuplicateKeysGroupedForCc) {
  // Two keys: key 0 ends on page 5, key 1 starts on page 2 (< 5, no CC
  // increment), so CC = 1 (only the first key counts).
  std::vector<KeyPageRef> refs = {{0, 1}, {0, 5}, {1, 2}, {1, 9}};
  auto stats = CollectBaselineTraceStats(refs, 10);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->distinct_keys, 2u);
  EXPECT_EQ(stats->cluster_counter, 1u);
}

TEST(MlTest, FullBufferNoRefetches) {
  MlEstimator ml(100, 10000, 500);
  // With B >= T the model caps at T * (1 - q^x).
  double est = ml.Estimate({1.0, 100});
  EXPECT_LE(est, 100.0 + 1e-9);
  EXPECT_GT(est, 95.0);  // Nearly every page touched on a full scan.
}

TEST(MlTest, MatchesHandComputedFormula) {
  uint64_t t = 100, n = 10000, i = 500;
  MlEstimator ml(t, n, i);
  double d = static_cast<double>(n) / i;  // 20
  double r = static_cast<double>(n) / t;  // 100 -> exponent = min = 20
  ASSERT_LT(d, r);
  double q = std::pow(1.0 - 1.0 / t, d);
  double x = 10;  // Few key values: x <= n region for a large buffer.
  double expected = t * (1.0 - std::pow(q, x));
  EXPECT_NEAR(ml.PagesForKeyValues(x, t), expected, 1e-9);
}

TEST(MlTest, LinearTailBeyondBufferKnee) {
  uint64_t t = 1000, n = 100000, i = 1000;
  MlEstimator ml(t, n, i);
  double b = 100;  // Small buffer: knee n well below I.
  // Beyond the knee the curve is linear in x: check equal increments.
  double f1 = ml.PagesForKeyValues(600, b);
  double f2 = ml.PagesForKeyValues(700, b);
  double f3 = ml.PagesForKeyValues(800, b);
  EXPECT_NEAR(f2 - f1, f3 - f2, 1e-6);
  EXPECT_GT(f2, f1);
}

TEST(MlTest, MonotoneInSelectivityAndBuffer) {
  MlEstimator ml(500, 50000, 2000);
  double prev = -1;
  for (double sigma : {0.01, 0.05, 0.2, 0.5, 1.0}) {
    double est = ml.Estimate({sigma, 50});
    EXPECT_GE(est, prev);
    prev = est;
  }
  // Larger buffer never increases the estimate.
  for (double sigma : {0.1, 0.9}) {
    EXPECT_GE(ml.Estimate({sigma, 10}), ml.Estimate({sigma, 400}) - 1e-9);
  }
}

TEST(MlTest, ZeroSelectivityZeroPages) {
  MlEstimator ml(100, 1000, 100);
  EXPECT_EQ(ml.Estimate({0.0, 10}), 0.0);
}

TEST(DcTest, PerfectlyClusteredEstimatesSigmaT) {
  auto stats = CollectBaselineTraceStats(ClusteredRefs(100, 10), 100);
  ASSERT_TRUE(stats.ok());
  DcEstimator dc(*stats);
  // CC/I = 1 and the log term is positive (T > I would be needed)...
  // here T=100 < I=1000 so ln is negative; CR < 1 as printed.
  EXPECT_LE(dc.cluster_ratio(), 1.0);
  double est = dc.Estimate({0.5, 50});
  EXPECT_GT(est, 0.0);
}

TEST(DcTest, ClusterRatioCappedAtOne) {
  // T >> I makes the log term large; CR must cap at 1, estimate = sigma*T.
  std::vector<KeyPageRef> refs;
  for (int p = 0; p < 100; ++p) {
    refs.push_back(KeyPageRef{p / 20, static_cast<PageId>(p)});
  }
  auto stats = CollectBaselineTraceStats(refs, 100);
  ASSERT_TRUE(stats.ok());
  DcEstimator dc(*stats);
  EXPECT_DOUBLE_EQ(dc.cluster_ratio(), 1.0);
  EXPECT_NEAR(dc.Estimate({0.3, 10}), 0.3 * 100.0, 1e-9);
}

TEST(SdTest, ClusteredIndexEstimatesSigmaT) {
  auto stats = CollectBaselineTraceStats(ClusteredRefs(100, 10), 100);
  ASSERT_TRUE(stats.ok());
  SdEstimator sd(*stats);
  EXPECT_DOUBLE_EQ(sd.cluster_ratio(), 1.0);  // J1 == T.
  EXPECT_NEAR(sd.Estimate({0.4, 50}), 0.4 * 100.0, 1e-9);
}

TEST(SdTest, UnclusteredUsesCardenasTerm) {
  auto stats = CollectBaselineTraceStats(AlternatingRefs(100, 10), 100);
  ASSERT_TRUE(stats.ok());
  SdEstimator sd(*stats);
  EXPECT_DOUBLE_EQ(sd.cluster_ratio(), 0.0);  // J1 == N.
  double sigma = 0.5;
  double i = 1000;
  double u = sigma * i * CardenasPages(100.0, 100.0 / i);
  EXPECT_NEAR(sd.Estimate({sigma, 50}), u, 1e-9);
}

TEST(SdTest, BufferLargerThanTableCapsAtT) {
  auto stats = CollectBaselineTraceStats(AlternatingRefs(10, 100), 10);
  ASSERT_TRUE(stats.ok());
  SdEstimator sd(*stats, SdExponentMode::kNOverI);
  double capped = sd.Estimate({1.0, 50});   // B > T: V = min(U, T).
  double uncapped = sd.Estimate({1.0, 5});  // B <= T: V = U.
  EXPECT_LE(capped, 10.0 + 1e-9);
  EXPECT_GE(uncapped, capped);
}

TEST(SdTest, ExponentModesDiffer) {
  auto stats = CollectBaselineTraceStats(AlternatingRefs(100, 10), 100);
  ASSERT_TRUE(stats.ok());
  SdEstimator paper(*stats, SdExponentMode::kPaperTOverI);
  SdEstimator fixed(*stats, SdExponentMode::kNOverI);
  // T/I = 0.1 vs N/I = 1: different Cardenas terms.
  EXPECT_NE(paper.Estimate({0.5, 50}), fixed.Estimate({0.5, 50}));
}

TEST(OtTest, ClusteredIndexCrIsOne) {
  auto stats = CollectBaselineTraceStats(ClusteredRefs(100, 10), 100);
  ASSERT_TRUE(stats.ok());
  OtEstimator ot(*stats);
  // CR = (N + T - J3)/N = (1000 + 100 - 100)/1000 = 1.
  EXPECT_DOUBLE_EQ(ot.cluster_ratio(), 1.0);
  EXPECT_NEAR(ot.Estimate({0.25, 10}), 0.25 * 100.0, 1e-9);
}

TEST(OtTest, UnclusteredCrIsTOverN) {
  auto stats = CollectBaselineTraceStats(AlternatingRefs(100, 10), 100);
  ASSERT_TRUE(stats.ok());
  OtEstimator ot(*stats);
  // J3 == N: CR = T/N = 0.1; estimate = sigma*(T + 0.9*(N - T)).
  EXPECT_DOUBLE_EQ(ot.cluster_ratio(), 0.1);
  EXPECT_NEAR(ot.Estimate({1.0, 10}), 100.0 + 0.9 * 900.0, 1e-9);
}

TEST(NaiveTest, ClusteredAndUnclusteredBounds) {
  PerfectlyClusteredEstimator clustered(200);
  PerfectlyUnclusteredEstimator unclustered(5000);
  EXPECT_DOUBLE_EQ(clustered.Estimate({0.5, 10}), 100.0);
  EXPECT_DOUBLE_EQ(unclustered.Estimate({0.5, 10}), 2500.0);
}

TEST(NaiveTest, CardenasAndYaoIgnoreBuffer) {
  CardenasEstimator cardenas(100, 10000);
  YaoEstimator yao(100, 10000);
  for (double sigma : {0.01, 0.2}) {
    EXPECT_DOUBLE_EQ(cardenas.Estimate({sigma, 5}),
                     cardenas.Estimate({sigma, 500}));
    EXPECT_DOUBLE_EQ(yao.Estimate({sigma, 5}), yao.Estimate({sigma, 500}));
    // Both bounded by T.
    EXPECT_LE(cardenas.Estimate({sigma, 5}), 100.0);
    EXPECT_LE(yao.Estimate({sigma, 5}), 100.0);
  }
}

TEST(NaiveTest, Names) {
  EXPECT_EQ(PerfectlyClusteredEstimator(1).name(), "Clustered");
  EXPECT_EQ(PerfectlyUnclusteredEstimator(1).name(), "Unclustered");
  EXPECT_EQ(CardenasEstimator(1, 1).name(), "Cardenas");
  EXPECT_EQ(YaoEstimator(1, 1).name(), "Yao");
  EXPECT_EQ(MlEstimator(1, 1, 1).name(), "ML");
}

}  // namespace
}  // namespace epfis
