#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "buffer/buffer_pool.h"
#include "index/btree.h"
#include "storage/disk_manager.h"
#include "util/random.h"

namespace epfis {
namespace {

IndexEntry MakeEntry(int64_t key, uint32_t page = 0, uint16_t slot = 0) {
  return IndexEntry{key, Rid{page, slot}};
}

class BTreeDeleteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<DiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 128);
    tree_ = std::make_unique<BTree>(pool_.get(), "del");
  }

  std::vector<IndexEntry> DrainAll() {
    std::vector<IndexEntry> out;
    auto it = tree_->Begin();
    EXPECT_TRUE(it.ok());
    BTreeIterator iter = std::move(it).value();
    while (iter.Valid()) {
      out.push_back(iter.entry());
      EXPECT_TRUE(iter.Next().ok());
    }
    return out;
  }

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeDeleteTest, RemoveFromEmptyFails) {
  EXPECT_EQ(tree_->Remove(MakeEntry(1)).code(), StatusCode::kNotFound);
}

TEST_F(BTreeDeleteTest, RemoveMissingEntryFails) {
  ASSERT_TRUE(tree_->Insert(MakeEntry(1)).ok());
  EXPECT_EQ(tree_->Remove(MakeEntry(2)).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree_->Remove(MakeEntry(1, 0, 1)).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree_->num_entries(), 1u);
}

TEST_F(BTreeDeleteTest, InsertRemoveSingle) {
  ASSERT_TRUE(tree_->Insert(MakeEntry(7)).ok());
  ASSERT_TRUE(tree_->Remove(MakeEntry(7)).ok());
  EXPECT_EQ(tree_->num_entries(), 0u);
  EXPECT_TRUE(tree_->empty());
  // Tree is reusable after emptying.
  ASSERT_TRUE(tree_->Insert(MakeEntry(9)).ok());
  EXPECT_TRUE(tree_->Contains(MakeEntry(9)).value());
}

TEST_F(BTreeDeleteTest, DrainSequentiallyForward) {
  const int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_->Insert(MakeEntry(i)).ok());
  }
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_->Remove(MakeEntry(i)).ok()) << i;
    if (i % 500 == 0) {
      ASSERT_TRUE(tree_->CheckIntegrity().ok()) << "after removing " << i;
    }
  }
  EXPECT_TRUE(tree_->empty());
}

TEST_F(BTreeDeleteTest, DrainSequentiallyBackward) {
  const int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_->Insert(MakeEntry(i)).ok());
  }
  for (int i = kN - 1; i >= 0; --i) {
    ASSERT_TRUE(tree_->Remove(MakeEntry(i)).ok()) << i;
    if (i % 500 == 0) {
      ASSERT_TRUE(tree_->CheckIntegrity().ok());
    }
  }
  EXPECT_TRUE(tree_->empty());
}

TEST_F(BTreeDeleteTest, RandomInsertDeleteMatchesSetOracle) {
  Rng rng(61);
  std::set<IndexEntry> oracle;
  for (int op = 0; op < 12000; ++op) {
    IndexEntry e = MakeEntry(rng.NextInRange(0, 600),
                             static_cast<uint32_t>(rng.NextBounded(20)),
                             static_cast<uint16_t>(rng.NextBounded(20)));
    if (rng.NextBernoulli(0.55)) {
      Status s = tree_->Insert(e);
      if (oracle.count(e) > 0) {
        EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
      } else {
        ASSERT_TRUE(s.ok()) << op;
        oracle.insert(e);
      }
    } else {
      Status s = tree_->Remove(e);
      if (oracle.count(e) > 0) {
        ASSERT_TRUE(s.ok()) << op << " " << s.ToString();
        oracle.erase(e);
      } else {
        EXPECT_EQ(s.code(), StatusCode::kNotFound) << op;
      }
    }
    if (op % 2000 == 1999) {
      ASSERT_TRUE(tree_->CheckIntegrity().ok()) << "op " << op;
      ASSERT_EQ(tree_->num_entries(), oracle.size());
    }
  }
  ASSERT_TRUE(tree_->CheckIntegrity().ok());
  std::vector<IndexEntry> all = DrainAll();
  ASSERT_EQ(all.size(), oracle.size());
  size_t i = 0;
  for (const IndexEntry& e : oracle) EXPECT_EQ(all[i++], e);
}

TEST_F(BTreeDeleteTest, BulkLoadedTreeSupportsDeletes) {
  std::vector<IndexEntry> entries;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    entries.push_back(MakeEntry(i, static_cast<uint32_t>(i / 100),
                                static_cast<uint16_t>(i % 100)));
  }
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  Rng rng(67);
  std::set<int64_t> removed;
  for (int i = 0; i < 5000; ++i) {
    int64_t key = rng.NextInRange(0, kN - 1);
    if (removed.count(key) > 0) continue;
    ASSERT_TRUE(tree_
                    ->Remove(MakeEntry(key, static_cast<uint32_t>(key / 100),
                                       static_cast<uint16_t>(key % 100)))
                    .ok())
        << key;
    removed.insert(key);
  }
  ASSERT_TRUE(tree_->CheckIntegrity().ok());
  EXPECT_EQ(tree_->num_entries(), static_cast<uint64_t>(kN) - removed.size());
  // Height shrinks (or stays) after mass deletion, never grows.
  for (int i = 0; i < kN; ++i) {
    if (removed.count(i) > 0) continue;
    ASSERT_TRUE(tree_
                    ->Remove(MakeEntry(i, static_cast<uint32_t>(i / 100),
                                       static_cast<uint16_t>(i % 100)))
                    .ok());
  }
  EXPECT_TRUE(tree_->empty());
}

TEST_F(BTreeDeleteTest, HeightShrinksOnMassDeletion) {
  const int kN = 60000;
  std::vector<IndexEntry> entries;
  for (int i = 0; i < kN; ++i) {
    entries.push_back(MakeEntry(i));
  }
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  uint32_t initial_height = tree_->height();
  ASSERT_GE(initial_height, 3u);
  for (int i = 0; i < kN - 50; ++i) {
    ASSERT_TRUE(tree_->Remove(MakeEntry(i)).ok());
  }
  ASSERT_TRUE(tree_->CheckIntegrity().ok());
  EXPECT_LT(tree_->height(), initial_height);
  EXPECT_EQ(tree_->num_entries(), 50u);
}

TEST_F(BTreeDeleteTest, LeafChainIntactAfterMerges) {
  const int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_->Insert(MakeEntry(i)).ok());
  }
  // Remove every other key to force borrows, then a dense range to force
  // merges.
  for (int i = 0; i < kN; i += 2) {
    ASSERT_TRUE(tree_->Remove(MakeEntry(i)).ok());
  }
  for (int i = 1001; i < 3001; i += 2) {
    ASSERT_TRUE(tree_->Remove(MakeEntry(i)).ok());
  }
  ASSERT_TRUE(tree_->CheckIntegrity().ok());
  std::vector<IndexEntry> all = DrainAll();
  EXPECT_EQ(all.size(), tree_->num_entries());
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].key, all[i].key);
  }
}

}  // namespace
}  // namespace epfis
