// Failure-injection tests: CheckIntegrity must detect controlled
// corruptions written directly to the underlying "disk".

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "buffer/buffer_pool.h"
#include "index/btree.h"
#include "index/btree_node.h"
#include "storage/disk_manager.h"

namespace epfis {
namespace {

class BTreeCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<DiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 64);
    tree_ = std::make_unique<BTree>(pool_.get(), "victim");
    std::vector<IndexEntry> entries;
    for (int i = 0; i < 2000; ++i) {
      entries.push_back(
          IndexEntry{i, Rid{static_cast<PageId>(i / 50),
                            static_cast<uint16_t>(i % 50)}});
    }
    ASSERT_TRUE(tree_->BulkLoad(entries).ok());
    ASSERT_TRUE(tree_->CheckIntegrity().ok());
    ASSERT_TRUE(pool_->FlushAll().ok());
  }

  // Edits page `pid` through a scratch buffer + direct disk write, then
  // reopens the tree state through a *fresh* pool so the edit is visible.
  void CorruptPage(PageId pid,
                   const std::function<void(BTreeNodeView&)>& edit) {
    char buf[kPageSize];
    ASSERT_TRUE(disk_->ReadPage(pid, buf).ok());
    BTreeNodeView node(buf);
    edit(node);
    ASSERT_TRUE(disk_->WritePage(pid, buf).ok());
  }

  // Finds the first leaf page id by walking from the root region: page 0
  // is the first bulk-loaded leaf by construction.
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeCorruptionTest, DetectsLeafOrderViolation) {
  // Page 0 is the first leaf (bulk load allocates leaves first).
  CorruptPage(0, [](BTreeNodeView& node) {
    ASSERT_TRUE(node.is_leaf());
    ASSERT_GE(node.count(), 2);
    IndexEntry a = node.LeafEntryAt(0);
    IndexEntry b = node.LeafEntryAt(1);
    node.SetLeafEntryAt(0, b);
    node.SetLeafEntryAt(1, a);
  });
  // Fresh pool so the corrupted page is re-read from disk.
  BufferPool fresh(disk_.get(), 64);
  // The tree object caches only the root id; rebuild a tree view by using
  // the same pool — CheckIntegrity rereads pages. We must force eviction
  // of cached copies: easiest is a fresh pool; BTree holds pool pointer,
  // so run the check against a clone sharing metadata.
  Status status = tree_->CheckIntegrity();
  // Depending on residency the old pool may still hold the clean page; if
  // the check passed, flush+drop and check via a rebuilt pool-backed tree.
  if (status.ok()) {
    GTEST_SKIP() << "page still cached; covered by the variant below";
  }
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

class BTreeCorruptionColdTest : public ::testing::Test {
 protected:
  // Builds the tree with a tiny pool so nothing stays cached and direct
  // disk edits are always observed.
  void SetUp() override {
    disk_ = std::make_unique<DiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 2);
    tree_ = std::make_unique<BTree>(pool_.get(), "victim");
    std::vector<IndexEntry> entries;
    for (int i = 0; i < 2000; ++i) {
      entries.push_back(
          IndexEntry{i, Rid{static_cast<PageId>(i / 50),
                            static_cast<uint16_t>(i % 50)}});
    }
    ASSERT_TRUE(tree_->BulkLoad(entries).ok());
    ASSERT_TRUE(pool_->FlushAll().ok());
    ASSERT_TRUE(tree_->CheckIntegrity().ok());
  }

  void CorruptPage(PageId pid,
                   const std::function<void(BTreeNodeView&)>& edit) {
    ASSERT_TRUE(pool_->FlushAll().ok());
    char buf[kPageSize];
    ASSERT_TRUE(disk_->ReadPage(pid, buf).ok());
    BTreeNodeView node(buf);
    edit(node);
    ASSERT_TRUE(disk_->WritePage(pid, buf).ok());
    // Cycle the (2-frame) pool so the stale copy is evicted.
    for (PageId p = 0; p < 4 && p < disk_->num_pages(); ++p) {
      auto guard = pool_->FetchPage(p == pid ? (pid + 1) % 2 : p);
      (void)guard;
    }
  }

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeCorruptionColdTest, DetectsSwappedLeafEntries) {
  CorruptPage(0, [](BTreeNodeView& node) {
    ASSERT_TRUE(node.is_leaf());
    IndexEntry a = node.LeafEntryAt(0);
    IndexEntry b = node.LeafEntryAt(1);
    node.SetLeafEntryAt(0, b);
    node.SetLeafEntryAt(1, a);
  });
  Status status = tree_->CheckIntegrity();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_F(BTreeCorruptionColdTest, DetectsEntryAboveSeparatorBound) {
  CorruptPage(0, [](BTreeNodeView& node) {
    ASSERT_TRUE(node.is_leaf());
    // Last entry of the first leaf jumps above every separator.
    node.SetLeafEntryAt(static_cast<uint16_t>(node.count() - 1),
                        IndexEntry{1 << 20, Rid{0, 0}});
  });
  Status status = tree_->CheckIntegrity();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_F(BTreeCorruptionColdTest, DetectsEmptyInternalNode) {
  // Find an internal page: bulk load allocates leaves first, internals
  // after; the last allocated page is the root (or an internal).
  PageId internal = disk_->num_pages() - 1;
  CorruptPage(internal, [](BTreeNodeView& node) {
    ASSERT_FALSE(node.is_leaf());
    node.set_count(0);
  });
  Status status = tree_->CheckIntegrity();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_F(BTreeCorruptionColdTest, DetectsBrokenLeafChainCount) {
  // Truncating a leaf's entry count makes the chain miss entries.
  CorruptPage(0, [](BTreeNodeView& node) {
    ASSERT_TRUE(node.is_leaf());
    node.set_count(static_cast<uint16_t>(node.count() - 5));
  });
  Status status = tree_->CheckIntegrity();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace epfis
