#include "index/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "buffer/buffer_pool.h"
#include "index/btree_iterator.h"
#include "index/btree_node.h"
#include "storage/disk_manager.h"
#include "util/random.h"

namespace epfis {
namespace {

IndexEntry MakeEntry(int64_t key, uint32_t page = 0, uint16_t slot = 0) {
  return IndexEntry{key, Rid{page, slot}};
}

TEST(BTreeNodeTest, LeafLayoutRoundTrip) {
  char buf[kPageSize];
  BTreeNodeView node = BTreeNodeView::InitLeaf(buf);
  EXPECT_TRUE(node.is_leaf());
  EXPECT_EQ(node.count(), 0u);
  EXPECT_EQ(node.next_leaf(), kInvalidPageId);

  node.InsertLeafEntryAt(0, MakeEntry(10, 1, 2));
  node.InsertLeafEntryAt(1, MakeEntry(30, 3, 4));
  node.InsertLeafEntryAt(1, MakeEntry(20, 5, 6));  // Shifts 30 right.
  ASSERT_EQ(node.count(), 3u);
  EXPECT_EQ(node.LeafEntryAt(0), MakeEntry(10, 1, 2));
  EXPECT_EQ(node.LeafEntryAt(1), MakeEntry(20, 5, 6));
  EXPECT_EQ(node.LeafEntryAt(2), MakeEntry(30, 3, 4));

  EXPECT_EQ(node.LeafLowerBound(MakeEntry(5)), 0u);
  EXPECT_EQ(node.LeafLowerBound(MakeEntry(20, 5, 6)), 1u);
  EXPECT_EQ(node.LeafLowerBound(MakeEntry(25)), 2u);
  EXPECT_EQ(node.LeafLowerBound(MakeEntry(99)), 3u);
}

TEST(BTreeNodeTest, InternalLayoutRoundTrip) {
  char buf[kPageSize];
  BTreeNodeView node = BTreeNodeView::InitInternal(buf, /*first_child=*/7);
  EXPECT_FALSE(node.is_leaf());
  EXPECT_EQ(node.first_child(), 7u);

  node.InsertSeparatorAt(0, MakeEntry(100), 8);
  node.InsertSeparatorAt(1, MakeEntry(300), 10);
  node.InsertSeparatorAt(1, MakeEntry(200), 9);
  ASSERT_EQ(node.count(), 3u);
  EXPECT_EQ(node.SeparatorAt(0).key, 100);
  EXPECT_EQ(node.SeparatorAt(1).key, 200);
  EXPECT_EQ(node.SeparatorAt(2).key, 300);
  EXPECT_EQ(node.ChildAt(0), 7u);
  EXPECT_EQ(node.ChildAt(1), 8u);
  EXPECT_EQ(node.ChildAt(2), 9u);
  EXPECT_EQ(node.ChildAt(3), 10u);

  EXPECT_EQ(node.ChildIndexFor(MakeEntry(50)), 0u);
  EXPECT_EQ(node.ChildIndexFor(MakeEntry(100)), 1u);
  EXPECT_EQ(node.ChildIndexFor(MakeEntry(150)), 1u);
  EXPECT_EQ(node.ChildIndexFor(MakeEntry(250)), 2u);
  EXPECT_EQ(node.ChildIndexFor(MakeEntry(900)), 3u);
}

TEST(BTreeNodeTest, Capacities) {
  EXPECT_EQ(BTreeNodeView::kLeafCapacity, (kPageSize - 8) / 16);
  EXPECT_EQ(BTreeNodeView::kInternalCapacity, (kPageSize - 8) / 20);
  EXPECT_GE(BTreeNodeView::kLeafCapacity, 200u);
}

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<DiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 64);
    tree_ = std::make_unique<BTree>(pool_.get(), "test");
  }

  std::vector<IndexEntry> Drain(BTreeIterator it) {
    std::vector<IndexEntry> out;
    while (it.Valid()) {
      out.push_back(it.entry());
      EXPECT_TRUE(it.Next().ok());
    }
    return out;
  }

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTree) {
  EXPECT_TRUE(tree_->empty());
  EXPECT_EQ(tree_->num_entries(), 0u);
  auto it = tree_->Begin();
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
  EXPECT_FALSE(tree_->Contains(MakeEntry(1)).value());
  EXPECT_TRUE(tree_->CheckIntegrity().ok());
}

TEST_F(BTreeTest, InsertAndContains) {
  ASSERT_TRUE(tree_->Insert(MakeEntry(5, 1, 1)).ok());
  ASSERT_TRUE(tree_->Insert(MakeEntry(3, 2, 2)).ok());
  ASSERT_TRUE(tree_->Insert(MakeEntry(8, 3, 3)).ok());
  EXPECT_EQ(tree_->num_entries(), 3u);
  EXPECT_TRUE(tree_->Contains(MakeEntry(5, 1, 1)).value());
  EXPECT_FALSE(tree_->Contains(MakeEntry(5, 1, 2)).value());
  EXPECT_FALSE(tree_->Contains(MakeEntry(4)).value());
}

TEST_F(BTreeTest, DuplicateExactEntryRejected) {
  ASSERT_TRUE(tree_->Insert(MakeEntry(5, 1, 1)).ok());
  EXPECT_EQ(tree_->Insert(MakeEntry(5, 1, 1)).code(),
            StatusCode::kAlreadyExists);
  // Same key, different RID is fine (duplicate key values).
  EXPECT_TRUE(tree_->Insert(MakeEntry(5, 1, 2)).ok());
}

TEST_F(BTreeTest, IterationInOrderAcrossSplits) {
  // Enough entries to force several leaf splits and an internal level.
  const int kN = 2000;
  Rng rng(17);
  std::vector<int64_t> keys;
  for (int i = 0; i < kN; ++i) keys.push_back(i);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
  }
  for (int64_t k : keys) {
    ASSERT_TRUE(tree_->Insert(MakeEntry(k, static_cast<uint32_t>(k), 0)).ok());
  }
  EXPECT_GT(tree_->height(), 1u);
  ASSERT_TRUE(tree_->CheckIntegrity().ok());

  auto it = tree_->Begin();
  ASSERT_TRUE(it.ok());
  std::vector<IndexEntry> all = Drain(std::move(it).value());
  ASSERT_EQ(all.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(all[i].key, i);
  }
}

TEST_F(BTreeTest, RandomInsertMatchesSetOracle) {
  Rng rng(23);
  std::set<IndexEntry> oracle;
  for (int i = 0; i < 3000; ++i) {
    IndexEntry e = MakeEntry(rng.NextInRange(0, 400),
                             static_cast<uint32_t>(rng.NextBounded(50)),
                             static_cast<uint16_t>(rng.NextBounded(100)));
    Status s = tree_->Insert(e);
    if (oracle.count(e) > 0) {
      EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
    } else {
      ASSERT_TRUE(s.ok());
      oracle.insert(e);
    }
  }
  EXPECT_EQ(tree_->num_entries(), oracle.size());
  ASSERT_TRUE(tree_->CheckIntegrity().ok());

  auto it = tree_->Begin();
  ASSERT_TRUE(it.ok());
  std::vector<IndexEntry> all = Drain(std::move(it).value());
  ASSERT_EQ(all.size(), oracle.size());
  size_t i = 0;
  for (const IndexEntry& e : oracle) {
    EXPECT_EQ(all[i++], e);
  }

  // Point lookups agree with the oracle.
  for (int probe = 0; probe < 500; ++probe) {
    IndexEntry e = MakeEntry(rng.NextInRange(0, 400),
                             static_cast<uint32_t>(rng.NextBounded(50)),
                             static_cast<uint16_t>(rng.NextBounded(100)));
    EXPECT_EQ(tree_->Contains(e).value(), oracle.count(e) > 0);
  }
}

TEST_F(BTreeTest, SeekGEFindsFirstNotLess) {
  for (int64_t k : {10, 20, 30, 40, 50}) {
    ASSERT_TRUE(tree_->Insert(MakeEntry(k)).ok());
  }
  auto it = tree_->SeekGE(MakeEntry(25));
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->entry().key, 30);

  it = tree_->SeekGE(MakeEntry(30));
  ASSERT_TRUE(it.ok());
  EXPECT_EQ(it->entry().key, 30);

  it = tree_->SeekGE(MakeEntry(55));
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());

  it = tree_->SeekGE(MakeEntry(-100));
  ASSERT_TRUE(it.ok());
  EXPECT_EQ(it->entry().key, 10);
}

TEST_F(BTreeTest, SeekGEAcrossLeafBoundaries) {
  const int kN = 1500;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_->Insert(MakeEntry(2 * i)).ok());  // Even keys.
  }
  Rng rng(29);
  for (int probe = 0; probe < 200; ++probe) {
    int64_t target = rng.NextInRange(0, 2 * kN);
    auto it = tree_->SeekGE(BTree::MinEntryForKey(target));
    ASSERT_TRUE(it.ok());
    int64_t expected = (target % 2 == 0) ? target : target + 1;
    if (expected >= 2 * kN) {
      EXPECT_FALSE(it->Valid());
    } else {
      ASSERT_TRUE(it->Valid());
      EXPECT_EQ(it->entry().key, expected);
    }
  }
}

TEST_F(BTreeTest, BulkLoadMatchesIncrementalInsert) {
  Rng rng(31);
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 5000; ++i) {
    entries.push_back(MakeEntry(rng.NextInRange(0, 100000),
                                static_cast<uint32_t>(i), 0));
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());

  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  EXPECT_EQ(tree_->num_entries(), entries.size());
  ASSERT_TRUE(tree_->CheckIntegrity().ok());

  auto it = tree_->Begin();
  ASSERT_TRUE(it.ok());
  std::vector<IndexEntry> all = Drain(std::move(it).value());
  EXPECT_EQ(all, entries);
}

TEST_F(BTreeTest, BulkLoadRejectsNonEmptyAndDuplicates) {
  ASSERT_TRUE(tree_->Insert(MakeEntry(1)).ok());
  EXPECT_EQ(tree_->BulkLoad({MakeEntry(2)}).code(),
            StatusCode::kFailedPrecondition);

  BTree fresh(pool_.get(), "fresh");
  EXPECT_EQ(fresh.BulkLoad({MakeEntry(1), MakeEntry(1)}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BTreeTest, BulkLoadUnsortedInputIsSorted) {
  ASSERT_TRUE(tree_->BulkLoad({MakeEntry(3), MakeEntry(1), MakeEntry(2)}).ok());
  auto it = tree_->Begin();
  ASSERT_TRUE(it.ok());
  std::vector<IndexEntry> all = Drain(std::move(it).value());
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].key, 1);
  EXPECT_EQ(all[2].key, 3);
}

TEST_F(BTreeTest, BulkLoadLargeBuildsMultipleLevels) {
  std::vector<IndexEntry> entries;
  const int kN = 100000;
  entries.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    entries.push_back(MakeEntry(i, static_cast<uint32_t>(i / 100),
                                static_cast<uint16_t>(i % 100)));
  }
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  EXPECT_GE(tree_->height(), 3u);
  ASSERT_TRUE(tree_->CheckIntegrity().ok());

  // Spot-check seeks.
  auto it = tree_->SeekGE(BTree::MinEntryForKey(54321));
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->entry().key, 54321);
}

TEST_F(BTreeTest, DuplicateKeysStoredInRidOrder) {
  // 600 entries with the same key must iterate in RID order ("sorted RIDs
  // per key value").
  std::vector<IndexEntry> entries;
  for (uint32_t p = 0; p < 600; ++p) {
    entries.push_back(MakeEntry(7, 600 - 1 - p, 0));  // Reverse RID order.
  }
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  auto it = tree_->SeekGE(BTree::MinEntryForKey(7));
  ASSERT_TRUE(it.ok());
  std::vector<IndexEntry> all = Drain(std::move(it).value());
  ASSERT_EQ(all.size(), 600u);
  for (uint32_t p = 0; p < 600; ++p) {
    EXPECT_EQ(all[p].rid.page_id, p);
  }
}

TEST_F(BTreeTest, MinMaxEntryForKeyBracketDuplicates) {
  ASSERT_TRUE(tree_->Insert(MakeEntry(10, 5, 5)).ok());
  ASSERT_TRUE(tree_->Insert(MakeEntry(10, 1, 1)).ok());
  ASSERT_TRUE(tree_->Insert(MakeEntry(11, 0, 0)).ok());
  auto it = tree_->SeekGE(BTree::MinEntryForKey(10));
  ASSERT_TRUE(it.ok());
  EXPECT_EQ(it->entry().rid.page_id, 1u);
  it = tree_->SeekGE(BTree::MaxEntryForKey(10));
  ASSERT_TRUE(it.ok());
  EXPECT_EQ(it->entry().key, 11);
}

TEST_F(BTreeTest, IteratorNextOnInvalidFails) {
  BTreeIterator it;
  EXPECT_EQ(it.Next().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BTreeTest, WorksWithTinyBufferPool) {
  // The tree must function (slowly) even when the pool is much smaller
  // than the tree: pins are released promptly.
  BufferPool tiny(disk_.get(), 4);
  BTree tree(&tiny, "tiny");
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree.Insert(MakeEntry(i * 7 % 3000, 0, static_cast<uint16_t>(i))).ok())
        << i;
  }
  EXPECT_EQ(tree.num_entries(), 3000u);
  ASSERT_TRUE(tree.CheckIntegrity().ok());
}

}  // namespace
}  // namespace epfis
