#include "workload/data_gen.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "workload/gwl.h"

namespace epfis {
namespace {

SyntheticSpec SmallSpec() {
  SyntheticSpec spec;
  spec.num_records = 4000;
  spec.num_distinct = 200;
  spec.records_per_page = 20;
  spec.theta = 0.0;
  spec.window_fraction = 0.1;
  spec.noise = 0.05;
  spec.seed = 5;
  return spec;
}

TEST(GeneratePlacementTest, ValidatesSpec) {
  SyntheticSpec spec = SmallSpec();
  spec.num_records = 0;
  EXPECT_FALSE(GeneratePlacement(spec).ok());

  spec = SmallSpec();
  spec.num_distinct = 0;
  EXPECT_FALSE(GeneratePlacement(spec).ok());

  spec = SmallSpec();
  spec.num_distinct = spec.num_records + 1;
  EXPECT_FALSE(GeneratePlacement(spec).ok());

  spec = SmallSpec();
  spec.records_per_page = 0;
  EXPECT_FALSE(GeneratePlacement(spec).ok());

  spec = SmallSpec();
  spec.window_fraction = 1.5;
  EXPECT_FALSE(GeneratePlacement(spec).ok());

  spec = SmallSpec();
  spec.noise = 1.0;
  EXPECT_FALSE(GeneratePlacement(spec).ok());
}

TEST(GeneratePlacementTest, ShapeInvariants) {
  SyntheticSpec spec = SmallSpec();
  auto placement = GeneratePlacement(spec);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->page_of_record.size(), spec.num_records);
  EXPECT_EQ(placement->key_counts.size(), spec.num_distinct);
  EXPECT_EQ(placement->num_pages,
            (spec.num_records + spec.records_per_page - 1) /
                spec.records_per_page);
  uint64_t total = std::accumulate(placement->key_counts.begin(),
                                   placement->key_counts.end(), 0ULL);
  EXPECT_EQ(total, spec.num_records);

  // No page receives more than R records.
  std::vector<uint32_t> per_page(placement->num_pages, 0);
  for (uint32_t p : placement->page_of_record) {
    ASSERT_LT(p, placement->num_pages);
    ++per_page[p];
  }
  for (uint32_t c : per_page) EXPECT_LE(c, spec.records_per_page);
  // All pages fully used except possibly the tail (N divisible here).
  for (uint32_t c : per_page) EXPECT_EQ(c, spec.records_per_page);
}

TEST(GeneratePlacementTest, DeterministicPerSeed) {
  SyntheticSpec spec = SmallSpec();
  auto a = GeneratePlacement(spec);
  auto b = GeneratePlacement(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->page_of_record, b->page_of_record);
  EXPECT_EQ(a->key_counts, b->key_counts);

  spec.seed = 6;
  auto c = GeneratePlacement(spec);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->page_of_record, c->page_of_record);
}

TEST(GeneratePlacementTest, KZeroNoNoiseIsPerfectlyClustered) {
  SyntheticSpec spec = SmallSpec();
  spec.window_fraction = 0.0;
  spec.noise = 0.0;
  auto placement = GeneratePlacement(spec);
  ASSERT_TRUE(placement.ok());
  // Sequential fill: page ordinals are nondecreasing in record order.
  for (size_t i = 1; i < placement->page_of_record.size(); ++i) {
    ASSERT_GE(placement->page_of_record[i], placement->page_of_record[i - 1]);
  }
  EXPECT_DOUBLE_EQ(MeasureClusteringFactor(*placement), 1.0);
}

TEST(GeneratePlacementTest, ClusteringDecreasesWithK) {
  SyntheticSpec spec = SmallSpec();
  spec.noise = 0.0;
  double prev_c = 1.1;
  for (double k : {0.0, 0.05, 0.2, 1.0}) {
    spec.window_fraction = k;
    auto placement = GeneratePlacement(spec);
    ASSERT_TRUE(placement.ok());
    double c = MeasureClusteringFactor(*placement);
    EXPECT_LT(c, prev_c + 0.02) << "k=" << k;  // Allow small wiggle.
    prev_c = c;
  }
  EXPECT_LT(prev_c, 0.3);  // K=1 is close to random: low clustering.
}

TEST(GeneratePlacementTest, NoiseReducesClustering) {
  SyntheticSpec spec = SmallSpec();
  spec.window_fraction = 0.0;
  spec.noise = 0.0;
  auto clean = GeneratePlacement(spec);
  spec.noise = 0.10;
  auto noisy = GeneratePlacement(spec);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(noisy.ok());
  EXPECT_LT(MeasureClusteringFactor(*noisy),
            MeasureClusteringFactor(*clean));
}

TEST(GeneratePlacementTest, SkewedCountsWithTheta) {
  SyntheticSpec spec = SmallSpec();
  spec.theta = 0.86;
  spec.shuffle_counts = false;  // Rank 1 = key 1 most frequent.
  auto placement = GeneratePlacement(spec);
  ASSERT_TRUE(placement.ok());
  EXPECT_GT(placement->key_counts.front(), placement->key_counts.back());
  for (uint64_t c : placement->key_counts) EXPECT_GE(c, 1u);
}

TEST(PlacementTraceTest, MatchesRecordOrder) {
  SyntheticSpec spec = SmallSpec();
  auto placement = GeneratePlacement(spec);
  ASSERT_TRUE(placement.ok());
  std::vector<PageId> trace = PlacementTrace(*placement);
  ASSERT_EQ(trace.size(), placement->page_of_record.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i], placement->page_of_record[i]);
  }
}

TEST(MaterializeDatasetTest, DatasetMatchesPlacement) {
  SyntheticSpec spec = SmallSpec();
  auto placement = GeneratePlacement(spec);
  ASSERT_TRUE(placement.ok());
  auto dataset = MaterializeDataset(spec, *placement);
  ASSERT_TRUE(dataset.ok());

  EXPECT_EQ((*dataset)->num_records(), spec.num_records);
  EXPECT_EQ((*dataset)->num_pages(), placement->num_pages);
  EXPECT_EQ((*dataset)->num_distinct(), spec.num_distinct);
  EXPECT_EQ((*dataset)->index()->num_entries(), spec.num_records);
  ASSERT_TRUE((*dataset)->index()->CheckIntegrity().ok());

  // The index trace equals the placement trace up to page-id mapping:
  // page ordinal i materializes as PageId i (pages appended in order),
  // except entries within one key are RID-sorted. Compare multisets per
  // key instead of the exact sequence.
  auto key_trace = (*dataset)->FullIndexKeyPageTrace();
  ASSERT_TRUE(key_trace.ok());
  ASSERT_EQ(key_trace->size(), spec.num_records);

  size_t rec = 0;
  for (uint64_t key = 0; key < placement->key_counts.size(); ++key) {
    std::multiset<PageId> expected, actual;
    for (uint64_t c = 0; c < placement->key_counts[key]; ++c, ++rec) {
      expected.insert(placement->page_of_record[rec]);
      actual.insert((*key_trace)[rec].page);
      EXPECT_EQ((*key_trace)[rec].key, static_cast<int64_t>(key) + 1);
    }
    ASSERT_EQ(expected, actual) << "key " << key;
  }
}

TEST(MaterializeDatasetTest, RecordsReadBackWithCorrectKeys) {
  SyntheticSpec spec = SmallSpec();
  spec.num_records = 500;
  spec.num_distinct = 50;
  auto dataset = GenerateSynthetic(spec);
  ASSERT_TRUE(dataset.ok());
  // Spot-check: every index entry points at a record storing its key.
  auto trace = (*dataset)->FullIndexKeyPageTrace();
  ASSERT_TRUE(trace.ok());
  uint64_t checked = 0;
  auto it = (*dataset)->index()->Begin();
  ASSERT_TRUE(it.ok());
  while (it->Valid() && checked < 100) {
    auto record = (*dataset)->table()->Get(it->entry().rid);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record->value(0), it->entry().key);
    ASSERT_TRUE(it->Next().ok());
    ++checked;
  }
}

TEST(DatasetTest, CumCountsAndRangeQueries) {
  SyntheticSpec spec = SmallSpec();
  spec.num_records = 1000;
  spec.num_distinct = 10;
  spec.theta = 0.0;
  auto dataset = GenerateSynthetic(spec);
  ASSERT_TRUE(dataset.ok());
  const auto& counts = (*dataset)->key_counts();
  const auto& cum = (*dataset)->cum_counts();
  ASSERT_EQ(counts.size(), 10u);
  EXPECT_EQ(cum.back(), 1000u);

  EXPECT_EQ((*dataset)->RecordsInRange(1, 10), 1000u);
  EXPECT_EQ((*dataset)->RecordsInRange(1, 1), counts[0]);
  EXPECT_EQ((*dataset)->RecordsInRange(3, 5),
            counts[2] + counts[3] + counts[4]);
  EXPECT_EQ((*dataset)->RecordsInRange(5, 3), 0u);
  EXPECT_EQ((*dataset)->RecordsInRange(-5, 100), 1000u);  // Clamped.
}

TEST(DatasetTest, RangePageTraceMatchesFullTraceSlice) {
  SyntheticSpec spec = SmallSpec();
  spec.num_records = 2000;
  spec.num_distinct = 100;
  auto dataset = GenerateSynthetic(spec);
  ASSERT_TRUE(dataset.ok());

  auto full = (*dataset)->FullIndexKeyPageTrace();
  ASSERT_TRUE(full.ok());
  auto range = (*dataset)->RangePageTrace(10, 20);
  ASSERT_TRUE(range.ok());

  std::vector<PageId> expected;
  for (const KeyPageRef& ref : *full) {
    if (ref.key >= 10 && ref.key <= 20) expected.push_back(ref.page);
  }
  EXPECT_EQ(*range, expected);
}

TEST(DatasetTest, CreateValidatesKeyCounts) {
  EXPECT_FALSE(Dataset::Create("x", 10, {}).ok());
  EXPECT_FALSE(Dataset::Create("x", 10, {5, 0, 3}).ok());
}

}  // namespace
}  // namespace epfis
