#include <gtest/gtest.h>

#include <cmath>

#include "workload/gwl.h"
#include "workload/scan_gen.h"

namespace epfis {
namespace {

TEST(GwlColumnsTest, AllEightColumnsPresent) {
  const auto& columns = GwlColumns();
  ASSERT_EQ(columns.size(), 8u);
  // Table 2/3 spot checks.
  auto bran = GwlColumnByName("CMAC.BRAN");
  ASSERT_TRUE(bran.ok());
  EXPECT_EQ(bran->pages, 774u);
  EXPECT_EQ(bran->records_per_page, 20u);
  EXPECT_EQ(bran->column_cardinality, 131u);
  EXPECT_NEAR(bran->target_clustering, 0.433, 1e-9);

  auto clid = GwlColumnByName("PLON.CLID");
  ASSERT_TRUE(clid.ok());
  EXPECT_EQ(clid->pages, 4857u);
  EXPECT_EQ(clid->records_per_page, 123u);
  EXPECT_EQ(clid->column_cardinality, 437654u);
  EXPECT_NEAR(clid->target_clustering, 0.236, 1e-9);

  EXPECT_FALSE(GwlColumnByName("NOPE").ok());
}

TEST(GwlSynthesisTest, CalibrationHitsTargetClustering) {
  // Scaled-down columns with well-separated targets.
  GwlOptions options;
  options.scale = 0.15;
  options.seed = 11;
  options.tolerance = 0.03;
  for (const char* name : {"CMAC.BRAN", "INAP.UWID"}) {
    auto column = GwlColumnByName(name);
    ASSERT_TRUE(column.ok());
    auto synthesis = SynthesizeGwlColumn(*column, options);
    ASSERT_TRUE(synthesis.ok()) << name;
    EXPECT_NEAR(synthesis->measured_c, column->target_clustering, 0.06)
        << name;
    // Shape matches Table 2 (scaled).
    EXPECT_EQ(synthesis->dataset->records_per_page(),
              column->records_per_page);
    uint32_t expected_pages = static_cast<uint32_t>(
        std::llround(column->pages * options.scale));
    EXPECT_NEAR(synthesis->dataset->num_pages(), expected_pages, 1.0);
  }
}

TEST(GwlSynthesisTest, RejectsBadScale) {
  auto column = GwlColumnByName("CMAC.BRAN");
  ASSERT_TRUE(column.ok());
  GwlOptions options;
  options.scale = 0.0;
  EXPECT_FALSE(SynthesizeGwlColumn(*column, options).ok());
}

class ScanGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.num_records = 5000;
    spec.num_distinct = 500;
    spec.records_per_page = 25;
    spec.theta = 0.86;
    spec.window_fraction = 0.2;
    spec.seed = 19;
    auto dataset = GenerateSynthetic(spec);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
  }

  std::unique_ptr<Dataset> dataset_;
};

TEST_F(ScanGenTest, SmallScansCoverAtMostTwentyPercentPlusOneKey) {
  ScanGenerator gen(dataset_.get(), 3);
  for (int i = 0; i < 200; ++i) {
    ScanRange scan = gen.Small();
    EXPECT_GE(scan.num_records, 1u);
    EXPECT_EQ(scan.num_records,
              dataset_->RecordsInRange(scan.lo_key, scan.hi_key));
    EXPECT_LE(scan.lo_key, scan.hi_key);
    // The target r < 0.2; the realized scan can overshoot by at most one
    // key's worth of records (the paper's ">= rN" stopping rule).
    uint64_t max_key_count = 0;
    for (uint64_t c : dataset_->key_counts()) {
      max_key_count = std::max(max_key_count, c);
    }
    EXPECT_LE(scan.num_records,
              static_cast<uint64_t>(0.2 * 5000) + max_key_count);
  }
}

TEST_F(ScanGenTest, LargeScansCoverAtLeastTwentyPercent) {
  ScanGenerator gen(dataset_.get(), 4);
  for (int i = 0; i < 200; ++i) {
    ScanRange scan = gen.Large();
    // r >= 0.2 and the scan covers at least rN records.
    EXPECT_GE(scan.sigma, 0.0);
    EXPECT_GE(scan.num_records, 1u);
    EXPECT_EQ(scan.num_records,
              dataset_->RecordsInRange(scan.lo_key, scan.hi_key));
  }
}

TEST_F(ScanGenTest, FullScanCoversEverything) {
  ScanGenerator gen(dataset_.get(), 5);
  ScanRange scan = gen.Full();
  EXPECT_EQ(scan.lo_key, 1);
  EXPECT_EQ(scan.hi_key, 500);
  EXPECT_EQ(scan.num_records, 5000u);
  EXPECT_DOUBLE_EQ(scan.sigma, 1.0);
}

TEST_F(ScanGenTest, FromFractionMeetsTarget) {
  ScanGenerator gen(dataset_.get(), 6);
  for (double r : {0.01, 0.05, 0.1, 0.3, 0.7, 1.0}) {
    for (int i = 0; i < 20; ++i) {
      ScanRange scan = gen.FromFraction(r);
      EXPECT_GE(scan.num_records,
                static_cast<uint64_t>(std::ceil(r * 5000)) - 0u)
          << "r=" << r;
      EXPECT_DOUBLE_EQ(
          scan.sigma,
          static_cast<double>(scan.num_records) / 5000.0);
    }
  }
}

TEST_F(ScanGenTest, SigmaConsistentWithRecords) {
  ScanGenerator gen(dataset_.get(), 7);
  for (int i = 0; i < 100; ++i) {
    ScanRange scan = gen.Next(ScanMix::kMixed);
    EXPECT_DOUBLE_EQ(scan.sigma, static_cast<double>(scan.num_records) /
                                     static_cast<double>(5000));
  }
}

TEST_F(ScanGenTest, MixedDrawsBothSizes) {
  ScanGenerator gen(dataset_.get(), 8);
  int small = 0, large = 0;
  for (int i = 0; i < 300; ++i) {
    ScanRange scan = gen.Next(ScanMix::kMixed, 0.5);
    if (scan.sigma <= 0.25) {
      ++small;
    } else {
      ++large;
    }
  }
  EXPECT_GT(small, 50);
  EXPECT_GT(large, 50);
}

TEST_F(ScanGenTest, DeterministicPerSeed) {
  ScanGenerator a(dataset_.get(), 42), b(dataset_.get(), 42);
  for (int i = 0; i < 50; ++i) {
    ScanRange sa = a.Next(ScanMix::kMixed);
    ScanRange sb = b.Next(ScanMix::kMixed);
    EXPECT_EQ(sa.lo_key, sb.lo_key);
    EXPECT_EQ(sa.hi_key, sb.hi_key);
  }
}

TEST(ScanMixNameTest, Names) {
  EXPECT_EQ(ScanMixName(ScanMix::kMixed), "mixed");
  EXPECT_EQ(ScanMixName(ScanMix::kSmallOnly), "small-only");
  EXPECT_EQ(ScanMixName(ScanMix::kLargeOnly), "large-only");
  EXPECT_EQ(ScanMixName(ScanMix::kFullOnly), "full-only");
}

}  // namespace
}  // namespace epfis
