// The fault-sweep harness: for every registered injection point, arm a
// one-shot fault, run a representative pass over the whole pipeline
// (catalog persistence, trace I/O, trace sources, serial + sharded +
// batched LRU-Fit, Est-IO), and assert the system degrades instead of
// breaking: no crash, no hang (the pass completes), no leaked tmp file,
// errors surfaced through the Status taxonomy, and a full recovery on the
// next clean pass. Run under ASan/UBSan in CI, this is the "no leaked
// resources on any error path" proof.

#include <filesystem>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/stats_catalog.h"
#include "epfis/est_io.h"
#include "epfis/lru_fit.h"
#include "epfis/online_lru_fit.h"
#include "epfis/trace_io.h"
#include "epfis/trace_source.h"
#include "util/cancel.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace epfis {
namespace {

std::vector<PageId> MakeTrace(size_t n) {
  std::vector<PageId> trace(n);
  uint64_t x = 88172645463325252ULL;
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    trace[i] = static_cast<PageId>(x % 300);
  }
  return trace;
}

// Outcome of one pipeline pass: per-stage statuses, for the clean-pass
// all-ok assertion. Faulted passes only require that the pass *returns*.
struct PassResult {
  std::vector<Status> stages;

  bool all_ok() const {
    for (const Status& s : stages) {
      if (!s.ok()) return false;
    }
    return true;
  }
};

class FaultSweepTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    // Per-test directory: parallel ctest processes must not share scratch.
    dir_ = testing::TempDir() + "/epfis_fault_sweep_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    trace_ = MakeTrace(30000);
    trace_path_ = dir_ + "/fixture_trace.bin";
    ASSERT_TRUE(SavePageTrace(trace_, trace_path_).ok());
    StatsCatalog fixture;
    auto stats = RunLruFit(trace_, 300, 100, "ix_fixture");
    ASSERT_TRUE(stats.ok());
    fixture.Put(std::move(*stats));
    catalog_path_ = dir_ + "/fixture_stats.cat";
    ASSERT_TRUE(fixture.SaveToFile(catalog_path_).ok());
  }
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  // One pass over every instrumented subsystem. Every stage runs
  // regardless of earlier failures, so a single armed point cannot shadow
  // the reachability of the points behind it. The optional token is
  // threaded into every cancellable option struct — a pass with a null
  // token (the default) is the pre-existing fault sweep unchanged.
  PassResult RunPipeline(const std::string& tag,
                         CancellationToken cancel = {}) {
    PassResult result;
    auto record = [&result](Status s) { result.stages.push_back(s); };

    // Catalog save path (open/write/fsync/rename).
    StatsCatalog catalog;
    LruFitOptions serial_options;
    serial_options.cancel = cancel;
    auto stats = RunLruFit(trace_, 300, 100, "ix_fixture", serial_options);
    record(stats.ok() ? Status::Ok() : stats.status());
    if (stats.ok()) catalog.Put(std::move(*stats));
    std::string save_path = dir_ + "/sweep_" + tag + ".cat";
    record(catalog.SaveToFile(save_path));

    // Catalog load path (open/read).
    StatsCatalog loaded;
    record(loaded.LoadFromFile(catalog_path_));

    // Catalog v3 binary save + autodetecting load round-trip (same
    // open/write/fsync/rename and open/read points as the text format,
    // through the binary encoder instead).
    std::string v3_path = dir_ + "/sweep_" + tag + ".cat3";
    record(catalog.SaveToFileV3(v3_path));
    StatsCatalog v3_loaded;
    record(v3_loaded.LoadFromFile(v3_path));

    // Trace save path (open/write).
    record(SavePageTrace(trace_, dir_ + "/sweep_" + tag + ".bin"));

    // Streaming trace read path (open/header/body).
    TraceOpenOptions source_options;
    source_options.cancel = cancel;
    auto file_source = FileTraceSource::Open(trace_path_, source_options);
    record(file_source.ok() ? Status::Ok() : file_source.status());
    if (file_source.ok()) {
      PageId buf[1024];
      Status drain = Status::Ok();
      for (;;) {
        auto n = file_source->Next(buf, 1024);
        if (!n.ok()) {
          drain = n.status();
          break;
        }
        if (*n == 0) break;
      }
      record(drain);
    }

    // mmap open + degrade path.
    auto any_source = OpenTraceSource(trace_path_, source_options);
    record(any_source.ok() ? Status::Ok() : any_source.status());

    // io_uring open + degrade path (trace.uring.setup). Forced through
    // the ring — the autodetect's size threshold would skip this small
    // fixture — so the point is consulted on every pass; an injected
    // setup fault (or a kernel without io_uring) falls back to mmap
    // transparently, like trace.mmap.map one rung further down.
    {
      TraceOpenOptions uring_options;
      uring_options.cancel = cancel;
      uring_options.force_uring = true;
      auto uring_source = OpenTraceSource(trace_path_, uring_options);
      record(uring_source.ok() ? Status::Ok() : uring_source.status());
    }

    // Sharded simulation (sd.shard.task).
    {
      ThreadPool pool(4);
      LruFitOptions options;
      options.cancel = cancel;
      options.pool = &pool;
      options.num_shards = 6;
      auto sharded = RunLruFit(trace_, 300, 100, "ix_sharded", options);
      record(sharded.ok() ? Status::Ok() : sharded.status());
    }

    // Batch path (lru_fit.batch.job).
    {
      ThreadPool pool(4);
      std::vector<LruFitJob> jobs;
      for (int j = 0; j < 2; ++j) {
        LruFitJob job;
        job.trace = std::make_unique<VectorTraceSource>(MakeTrace(4000));
        job.table_pages = 300;
        job.index_name = "ix_batch_" + std::to_string(j);
        job.options.cancel = cancel;
        jobs.push_back(std::move(job));
      }
      LruFitBatchResult batch = RunLruFitBatch(std::move(jobs), pool,
                                               &catalog);
      for (const Status& s : batch.statuses) record(s);
    }

    // Online engine (online.refresh.emit, online.publish): six intervals
    // over the fixture trace, the first refresh bootstrap-publishing into
    // the engine's own empty catalog, so both points are consulted on
    // every clean pass. A fault inside a refresh surfaces out of Ingest;
    // the engine stays usable and the next interval retries.
    {
      StatsCatalog online_catalog;
      OnlineLruFitOptions online_options;
      online_options.table_pages = 300;
      online_options.distinct_keys = 100;
      online_options.window_refs = 20000;
      online_options.refresh_interval = 5000;
      online_options.cancel = cancel;
      OnlineLruFit engine("ix_online", online_options, &online_catalog);
      record(engine.Ingest(trace_));
    }

    // Est-IO catalog lookup (est_io.lookup) — against the loaded catalog,
    // whose content may legitimately be empty under a load fault; the
    // degraded mode is exactly what we want exercised then.
    ScanSpec scan;
    scan.sigma = 0.2;
    scan.sargable_selectivity = 0.8;
    scan.buffer_pages = 32;
    TableShape shape;
    shape.table_pages = 300;
    shape.table_records = 30000;
    auto est =
        EstIo::EstimateFromCatalog(loaded, "ix_fixture", scan, shape);
    record(est.ok() ? Status::Ok() : est.status());

    // Snapshot publish (catalog.publish.swap) + the lock-free serving
    // read path. A failed publish must leave the previous snapshot
    // current, so the batch below always has a coherent snapshot to read
    // — possibly a stale or empty one, which degrades per probe instead
    // of failing the batch.
    record(catalog.Publish());
    {
      std::shared_ptr<const CatalogSnapshot> snapshot = catalog.snapshot();
      std::vector<BatchProbe> probes = {
          BatchProbe{snapshot->Resolve("ix_fixture"), scan, shape}};
      std::vector<CatalogEstimate> results(probes.size());
      EstIoOptions est_options;
      est_options.cancel = cancel;
      record(EstIo::EstimateBatch(*snapshot, probes, results, est_options));
      // Per-probe provenance: shed probes carry Cancelled here while the
      // batch Status above stays Ok. Ok (curve) or NotFound (fallback on
      // an unpublished snapshot) on uncancelled passes.
      record(results[0].stats_status.code() == StatusCode::kCancelled ||
                     results[0].stats_status.code() ==
                         StatusCode::kDeadlineExceeded
                 ? results[0].stats_status
                 : Status::Ok());
    }
    return result;
  }

  bool HasTmpLeak() const {
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.path().extension() == ".tmp") return true;
    }
    return false;
  }

  std::string dir_;
  std::string trace_path_;
  std::string catalog_path_;
  std::vector<PageId> trace_;
};

// A clean pass reaches every canonical point: that is what makes the
// sweep below meaningful (an unreachable point would "pass" vacuously).
TEST_F(FaultSweepTest, CleanPassTouchesEveryCanonicalPoint) {
  PassResult clean = RunPipeline("clean");
  EXPECT_TRUE(clean.all_ok());
  for (const char* point : kAllFaultPoints) {
    EXPECT_GE(FaultInjector::Global().counters(point).calls, 1u)
        << "point never consulted in a clean pass: " << point;
  }
  EXPECT_GE(std::size(kAllFaultPoints), 12u);
}

// The sweep itself: each point armed one-shot with the default IoError,
// then (separately) checked for recovery on a clean pass.
TEST_F(FaultSweepTest, EveryPointDegradesGracefullyAndRecovers) {
  int swept = 0;
  for (const char* point : kAllFaultPoints) {
    SCOPED_TRACE(point);
    FaultInjector::Global().DisarmAll();
    FaultSpec spec;
    spec.max_fires = 1;
    FaultInjector::Global().Arm(point, spec);
    uint64_t fires_before = FaultInjector::Global().counters(point).fires;

    // Faulted pass: must complete (no crash, no hang) — statuses may be
    // errors, but only through the Status taxonomy.
    PassResult faulted = RunPipeline(std::string("fault_") + point);

    EXPECT_EQ(FaultInjector::Global().counters(point).fires,
              fires_before + 1)
        << "armed point never fired — injection not reachable";
    EXPECT_FALSE(HasTmpLeak()) << "tmp file leaked under fault";
    // The fault must surface somewhere: at least one stage failed, except
    // at points whose whole purpose is transparent degradation
    // (uring -> mmap and mmap -> streaming fallbacks hide access-path
    // errors by design).
    if (std::string(point) != "trace.mmap.map" &&
        std::string(point) != "trace.uring.setup") {
      EXPECT_FALSE(faulted.all_ok())
          << "injected error vanished without degrading anything";
    }

    // Recovery: the very next clean pass is fully healthy.
    FaultInjector::Global().DisarmAll();
    PassResult recovered = RunPipeline(std::string("clean_") + point);
    EXPECT_TRUE(recovered.all_ok()) << "pipeline did not recover";
    EXPECT_FALSE(HasTmpLeak());
    ++swept;
  }
  EXPECT_GE(swept, 12);
}

// Probabilistic schedules drive the same sweep through the deterministic
// PRNG: same seed, same failures, so a flaky-looking schedule is exactly
// reproducible.
TEST_F(FaultSweepTest, ProbabilisticScheduleIsReproducible) {
  auto run = [&](uint64_t seed) {
    FaultInjector::Global().DisarmAll();
    FaultSpec spec;
    spec.probability = 0.3;
    spec.seed = seed;
    FaultInjector::Global().Arm("catalog.save.write", spec);
    std::vector<bool> outcomes;
    StatsCatalog catalog;
    auto stats = RunLruFit(trace_, 300, 100, "ix");
    EXPECT_TRUE(stats.ok());
    catalog.Put(std::move(*stats));
    for (int i = 0; i < 10; ++i) {
      outcomes.push_back(
          catalog.SaveToFile(dir_ + "/prob.cat").ok());
    }
    FaultInjector::Global().DisarmAll();
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_FALSE(HasTmpLeak());
}

// The cancellation sweep: at every injection point, fire a cancel token
// (FaultKind::kCancel lets the faulted call itself proceed) and run the
// pipeline with that same token threaded through every option struct.
// Cancellation must surface only through the Status taxonomy — every
// failed stage reads Cancelled or DeadlineExceeded, nothing crashes or
// hangs, no tmp file leaks, and a pass with a fresh token is healthy.
TEST_F(FaultSweepTest, CancellationAtEveryPointSurfacesCleanly) {
  int swept = 0;
  for (const char* point : kAllFaultPoints) {
    SCOPED_TRACE(point);
    FaultInjector::Global().DisarmAll();
    CancellationToken token = CancellationToken::Create();
    FaultSpec spec;
    spec.kind = FaultKind::kCancel;
    spec.cancel_token = token;
    spec.max_fires = 1;
    FaultInjector::Global().Arm(point, spec);
    uint64_t fires_before = FaultInjector::Global().counters(point).fires;

    PassResult pass = RunPipeline(std::string("cancel_") + point, token);

    EXPECT_EQ(FaultInjector::Global().counters(point).fires,
              fires_before + 1)
        << "armed point never fired — injection not reachable";
    EXPECT_TRUE(token.cancelled());
    EXPECT_FALSE(HasTmpLeak()) << "tmp file leaked under cancellation";
    int cancelled_stages = 0;
    for (size_t i = 0; i < pass.stages.size(); ++i) {
      const Status& s = pass.stages[i];
      if (s.ok()) continue;
      EXPECT_TRUE(s.code() == StatusCode::kCancelled ||
                  s.code() == StatusCode::kDeadlineExceeded)
          << "stage " << i << " failed with a non-cancellation code: "
          << s.message();
      ++cancelled_stages;
    }
    // Every point fires before the final batch-estimate stage, whose
    // per-probe shed provenance observes the token even when every
    // earlier stage had already passed its last poll.
    EXPECT_GT(cancelled_stages, 0)
        << "cancellation vanished without stopping anything";

    // A fresh pass with a null token is fully healthy: cancellation is
    // per-run state, never sticky process state.
    FaultInjector::Global().DisarmAll();
    PassResult recovered = RunPipeline(std::string("post_") + point);
    EXPECT_TRUE(recovered.all_ok()) << "pipeline did not recover";
    EXPECT_FALSE(HasTmpLeak());
    ++swept;
  }
  EXPECT_GE(swept, 12);
}

// The serving invariant under a failed publish: readers keep the previous
// snapshot generation, bit-for-bit, until a publish actually succeeds.
TEST_F(FaultSweepTest, FailedPublishKeepsServingPreviousSnapshot) {
  StatsCatalog catalog;
  auto first = RunLruFit(trace_, 300, 100, "ix_first");
  ASSERT_TRUE(first.ok());
  catalog.Put(std::move(*first));
  ASSERT_TRUE(catalog.Publish().ok());
  std::shared_ptr<const CatalogSnapshot> before = catalog.snapshot();
  ASSERT_TRUE(before->Resolve("ix_first").valid());

  auto second = RunLruFit(trace_, 300, 100, "ix_second");
  ASSERT_TRUE(second.ok());
  catalog.Put(std::move(*second));

  FaultSpec spec;
  spec.max_fires = 1;
  FaultInjector::Global().Arm("catalog.publish.swap", spec);
  EXPECT_FALSE(catalog.Publish().ok());

  // Readers still get the exact pre-failure snapshot object.
  std::shared_ptr<const CatalogSnapshot> after = catalog.snapshot();
  EXPECT_EQ(after.get(), before.get());
  EXPECT_TRUE(after->Resolve("ix_first").valid());
  EXPECT_FALSE(after->Resolve("ix_second").valid());

  // The next clean publish swaps in both entries.
  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(catalog.Publish().ok());
  std::shared_ptr<const CatalogSnapshot> healed = catalog.snapshot();
  EXPECT_TRUE(healed->Resolve("ix_first").valid());
  EXPECT_TRUE(healed->Resolve("ix_second").valid());
}

}  // namespace
}  // namespace epfis
