// UringTraceSource: round-trip and Reset correctness across block
// boundaries, Status-for-Status error-taxonomy agreement with the
// streaming reader (the ring validates geometry eagerly, like mmap), and
// the OpenTraceSource degrade chain uring -> mmap -> streaming.
//
// Ring-dependent tests skip themselves when the kernel (or a seccomp
// policy) rejects io_uring_setup; the taxonomy tests run everywhere —
// geometry verdicts are produced before the ring is ever touched, in
// stub builds included.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "epfis/trace_io.h"
#include "epfis/trace_source.h"
#include "epfis/uring_trace_source.h"
#include "util/fault.h"
#include "util/random.h"

namespace epfis {
namespace {

class TempTraceFile {
 public:
  explicit TempTraceFile(const std::string& name)
      : path_("/tmp/epfis_uring_test_" + name + ".bin") {}
  ~TempTraceFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

  void WriteRaw(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  void AppendRaw(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  void Truncate(long delta) {
    std::ifstream in(path_, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    contents.resize(contents.size() - static_cast<size_t>(delta));
    WriteRaw(contents);
  }

 private:
  std::string path_;
};

Status StreamingVerdict(const std::string& path) {
  auto reader = PageTraceReader::Open(path);
  if (!reader.ok()) return reader.status();
  PageId buf[64];
  for (;;) {
    auto n = reader->Read(buf, 64);
    if (!n.ok()) return n.status();
    if (*n == 0) return Status::Ok();
  }
}

Status UringVerdict(const std::string& path) {
  auto source = UringTraceSource::Open(path);
  if (!source.ok()) return source.status();
  PageId buf[64];
  for (;;) {
    auto n = source->Next(buf, 64);
    if (!n.ok()) return n.status();
    if (*n == 0) return Status::Ok();
  }
}

// Geometry verdicts precede ring setup, so they agree with the streaming
// reader even where io_uring itself is unavailable.

TEST(UringTraceSourceTest, MissingFileIsIoErrorInBothReaders) {
  const std::string path = "/tmp/epfis_no_such_trace_uring.bin";
  EXPECT_EQ(UringVerdict(path).code(), StatusCode::kIoError);
  EXPECT_EQ(StreamingVerdict(path).code(), StatusCode::kIoError);
}

TEST(UringTraceSourceTest, TruncatedBodyIsCorruptionInBothReaders) {
  TempTraceFile file("truncated");
  ASSERT_TRUE(SavePageTrace({1, 2, 3, 4, 5}, file.path()).ok());
  file.Truncate(2);
  Status uring_status = UringVerdict(file.path());
  Status stream_status = StreamingVerdict(file.path());
  EXPECT_EQ(uring_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(stream_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(uring_status.ToString(), stream_status.ToString());
}

TEST(UringTraceSourceTest, TrailingBytesAreCorruptionInBothReaders) {
  TempTraceFile file("trailing");
  ASSERT_TRUE(SavePageTrace({1, 2, 3}, file.path()).ok());
  file.AppendRaw("xx");
  Status uring_status = UringVerdict(file.path());
  Status stream_status = StreamingVerdict(file.path());
  EXPECT_EQ(uring_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(stream_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(uring_status.ToString(), stream_status.ToString());
}

TEST(UringTraceSourceTest, ForeignMagicIsCorruptionInBothReaders) {
  TempTraceFile file("magic");
  std::string foreign = "NOTEPFIS";
  foreign.append(8, '\0');
  file.WriteRaw(foreign);
  EXPECT_EQ(UringVerdict(file.path()).code(), StatusCode::kCorruption);
  EXPECT_EQ(StreamingVerdict(file.path()).code(), StatusCode::kCorruption);
}

TEST(UringTraceSourceTest, ZeroLengthFileIsBadMagicInBothReaders) {
  TempTraceFile file("zero");
  file.WriteRaw("");
  Status uring_status = UringVerdict(file.path());
  Status stream_status = StreamingVerdict(file.path());
  EXPECT_EQ(uring_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(stream_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(uring_status.ToString(), stream_status.ToString());
}

TEST(UringTraceSourceTest, GoodMagicTruncatedCountInBothReaders) {
  TempTraceFile file("partial_count");
  std::string bytes(kPageTraceMagic, 8);
  bytes.append(4, '\0');
  file.WriteRaw(bytes);
  Status uring_status = UringVerdict(file.path());
  Status stream_status = StreamingVerdict(file.path());
  EXPECT_EQ(uring_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(stream_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(uring_status.ToString(), stream_status.ToString());
  EXPECT_NE(uring_status.ToString().find("truncated header"),
            std::string::npos)
      << uring_status.ToString();
}

// Ring-dependent behavior below.

TEST(UringTraceSourceTest, RoundTripsAcrossBlockBoundariesAndResets) {
  if (!UringTraceSource::Supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  // ~1.2MB of body: five 256KB blocks, so the cursor crosses block
  // boundaries and the read-ahead window refills mid-trace.
  Rng rng(11);
  std::vector<PageId> trace;
  for (int i = 0; i < 300'000; ++i) {
    trace.push_back(static_cast<PageId>(rng.NextBounded(9999)));
  }
  TempTraceFile file("roundtrip");
  ASSERT_TRUE(SavePageTrace(trace, file.path()).ok());

  auto source = UringTraceSource::Open(file.path());
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ASSERT_TRUE(source->size_hint().has_value());
  EXPECT_EQ(*source->size_hint(), trace.size());
  EXPECT_EQ(source->count(), trace.size());

  // Chunk size deliberately not a divisor of the trace length or the
  // block size, so copies start and stop at awkward offsets.
  std::vector<PageId> drained;
  std::vector<PageId> buf(4'097);
  for (;;) {
    auto n = source->Next(buf.data(), buf.size());
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (*n == 0) break;
    drained.insert(drained.end(), buf.begin(), buf.begin() + *n);
  }
  EXPECT_EQ(drained, trace);
  EXPECT_GE(source->stats().blocks_read, 5u);

  ASSERT_TRUE(source->Reset().ok());
  auto n = source->Next(buf.data(), 3);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(buf[0], trace[0]);
  EXPECT_EQ(buf[1], trace[1]);
  EXPECT_EQ(buf[2], trace[2]);
}

TEST(UringTraceSourceTest, EmptyTraceIsValidAndDrainsImmediately) {
  if (!UringTraceSource::Supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  TempTraceFile file("empty");
  ASSERT_TRUE(SavePageTrace({}, file.path()).ok());
  auto source = UringTraceSource::Open(file.path());
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(*source->size_hint(), 0u);
  PageId buf[4];
  EXPECT_EQ(source->Next(buf, 4).value(), 0u);
  ASSERT_TRUE(source->Reset().ok());
  EXPECT_EQ(source->Next(buf, 4).value(), 0u);
}

TEST(UringTraceSourceTest, ResetWithReadsInFlightReplaysIdentically) {
  if (!UringTraceSource::Supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  // Regression: Reset used to drain in normal mode, so a read completing
  // short mid-rewind was *resubmitted* as a continuation against slot
  // state about to be wiped — wasted I/O at best, a stale buffer replayed
  // into the post-Reset stream at worst. The drain now runs in teardown
  // mode. Reset here happens (a) immediately after Open, with the whole
  // read-ahead window in flight and nothing consumed, and (b) mid-stream,
  // with the cursor inside a block; both replays must be byte-identical.
  Rng rng(23);
  std::vector<PageId> trace;
  for (int i = 0; i < 300'000; ++i) {
    trace.push_back(static_cast<PageId>(rng.NextBounded(7777)));
  }
  TempTraceFile file("reset_inflight");
  ASSERT_TRUE(SavePageTrace(trace, file.path()).ok());

  auto source = UringTraceSource::Open(file.path());
  ASSERT_TRUE(source.ok()) << source.status().ToString();

  // (a) Nothing consumed, reads in flight.
  ASSERT_TRUE(source->Reset().ok());

  // (b) Consume into the middle of a block, then rewind.
  std::vector<PageId> buf(100'003);
  auto n = source->Next(buf.data(), buf.size());
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, buf.size());
  ASSERT_TRUE(source->Reset().ok());

  std::vector<PageId> drained;
  std::vector<PageId> chunk(4'099);
  for (;;) {
    auto got = source->Next(chunk.data(), chunk.size());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (*got == 0) break;
    drained.insert(drained.end(), chunk.begin(), chunk.begin() + *got);
  }
  EXPECT_EQ(drained, trace) << "stale pre-Reset buffers replayed";
}

TEST(UringTraceSourceTest, RepeatedResetsOnEmptyTraceStayClean) {
  if (!UringTraceSource::Supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  // An empty-but-valid trace has no blocks to submit: Reset must not
  // wait for (or leak) SQEs that were never queued, no matter how often
  // it runs or whether a drain preceded it.
  TempTraceFile file("reset_empty");
  ASSERT_TRUE(SavePageTrace({}, file.path()).ok());
  auto source = UringTraceSource::Open(file.path());
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  PageId buf[4];
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(source->Reset().ok()) << "iteration " << i;
    EXPECT_EQ(source->Next(buf, 4).value(), 0u);
    EXPECT_EQ(source->Next(buf, 4).value(), 0u);  // Stays drained.
  }
}

TEST(UringTraceSourceTest, MoveTransfersTheRing) {
  if (!UringTraceSource::Supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  TempTraceFile file("move");
  ASSERT_TRUE(SavePageTrace({7, 8, 9}, file.path()).ok());
  auto opened = UringTraceSource::Open(file.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  UringTraceSource moved = std::move(opened).value();
  PageId buf[8];
  auto n = moved.Next(buf, 8);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(buf[2], 9u);
}

TEST(UringTraceSourceTest, AbandonedMidStreamTearsDownCleanly) {
  if (!UringTraceSource::Supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  // Destroy the source with reads still in flight (nothing consumed):
  // the destructor must drain the kernel before freeing the buffers —
  // ASan in CI turns a missed drain into a use-after-free report.
  std::vector<PageId> trace(400'000, 1);
  TempTraceFile file("abandon");
  ASSERT_TRUE(SavePageTrace(trace, file.path()).ok());
  auto source = UringTraceSource::Open(file.path());
  ASSERT_TRUE(source.ok()) << source.status().ToString();
}

TEST(OpenTraceSourceUringTest, ForcedUringServesTheTrace) {
  TempTraceFile file("forced");
  std::vector<PageId> trace{4, 5, 6, 4};
  ASSERT_TRUE(SavePageTrace(trace, file.path()).ok());
  TraceOpenOptions options;
  options.force_uring = true;
  // Works whether or not io_uring exists: unavailability falls back to
  // mmap/streaming inside the factory.
  auto source = OpenTraceSource(file.path(), options);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  PageId buf[8];
  auto n = (*source)->Next(buf, 8);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(buf[3], 4u);
}

TEST(OpenTraceSourceUringTest, SetupFaultFallsBackToMmap) {
  TempTraceFile file("fault_fallback");
  std::vector<PageId> trace{1, 2, 3, 2, 1};
  ASSERT_TRUE(SavePageTrace(trace, file.path()).ok());
  FaultInjector::Global().DisarmAll();
  FaultSpec spec;
  spec.max_fires = 1;
  FaultInjector::Global().Arm("trace.uring.setup", spec);
  TraceOpenOptions options;
  options.force_uring = true;
  auto source = OpenTraceSource(file.path(), options);
  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  PageId buf[8];
  auto n = (*source)->Next(buf, 8);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_EQ(buf[4], 1u);
}

TEST(OpenTraceSourceUringTest, CorruptFileNeverFallsBack) {
  TempTraceFile file("no_fallback");
  ASSERT_TRUE(SavePageTrace({1, 2, 3}, file.path()).ok());
  file.AppendRaw("z");
  TraceOpenOptions options;
  options.force_uring = true;
  // Corruption is a property of the file: the factory must report it
  // rather than retry the same bytes through mmap and streaming.
  EXPECT_EQ(OpenTraceSource(file.path(), options).status().code(),
            StatusCode::kCorruption);
}

TEST(OpenTraceSourceUringTest, DefaultThresholdKeepsSmallFilesOffTheRing) {
  TempTraceFile file("threshold");
  ASSERT_TRUE(SavePageTrace({1, 2, 3}, file.path()).ok());
  // Default options: a 28-byte file is far below uring_min_bytes, so the
  // factory must not pay ring setup for it — observable via the source
  // type: mmap exposes entries(), uring does not... simplest observable:
  // the open succeeds and streams correctly either way; the threshold
  // behavior itself is pinned by the counter not moving.
  auto source = OpenTraceSource(file.path());
  ASSERT_TRUE(source.ok());
  PageId buf[4];
  EXPECT_EQ(source.value()->Next(buf, 4).value(), 3u);
}

}  // namespace
}  // namespace epfis
