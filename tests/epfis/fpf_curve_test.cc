#include "epfis/fpf_curve.h"

#include <gtest/gtest.h>

#include <cmath>

namespace epfis {
namespace {

TEST(BufferScheduleTest, RejectsBadRange) {
  EXPECT_FALSE(
      MakeBufferSchedule(0, 10, BufferSchedule::kPaperLinear).ok());
  EXPECT_FALSE(
      MakeBufferSchedule(10, 5, BufferSchedule::kPaperLinear).ok());
}

TEST(BufferScheduleTest, DegenerateSinglePoint) {
  auto sizes = MakeBufferSchedule(7, 7, BufferSchedule::kPaperLinear);
  ASSERT_TRUE(sizes.ok());
  ASSERT_EQ(sizes->size(), 1u);
  EXPECT_EQ((*sizes)[0], 7u);
}

TEST(BufferScheduleTest, LinearEndpointsAndSpacing) {
  // Range 12..1012: step = 2*sqrt(1000) ~= 63.2.
  auto sizes = MakeBufferSchedule(12, 1012, BufferSchedule::kPaperLinear);
  ASSERT_TRUE(sizes.ok());
  EXPECT_EQ(sizes->front(), 12u);
  EXPECT_EQ(sizes->back(), 1012u);
  double step = 2.0 * std::sqrt(1000.0);
  for (size_t i = 2; i + 1 < sizes->size(); ++i) {
    double gap = static_cast<double>((*sizes)[i] - (*sizes)[i - 1]);
    EXPECT_NEAR(gap, step, 1.5) << "i=" << i;
  }
}

TEST(BufferScheduleTest, StrictlyIncreasing) {
  for (auto schedule :
       {BufferSchedule::kPaperLinear, BufferSchedule::kGraefeGeometric}) {
    for (uint64_t b_max : {13ULL, 100ULL, 5000ULL, 100000ULL}) {
      auto sizes = MakeBufferSchedule(12, b_max, schedule);
      ASSERT_TRUE(sizes.ok());
      for (size_t i = 1; i < sizes->size(); ++i) {
        ASSERT_LT((*sizes)[i - 1], (*sizes)[i]);
      }
      EXPECT_EQ(sizes->front(), 12u);
      EXPECT_EQ(sizes->back(), b_max);
    }
  }
}

TEST(BufferScheduleTest, PointCountGrowsSlowerThanRange) {
  // ~sqrt growth: quadrupling the range should roughly double the points.
  auto small = MakeBufferSchedule(12, 1012, BufferSchedule::kPaperLinear);
  auto large = MakeBufferSchedule(12, 4012, BufferSchedule::kPaperLinear);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  double ratio = static_cast<double>(large->size()) /
                 static_cast<double>(small->size());
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.6);
}

TEST(BufferScheduleTest, GeometricDensestAtSmallSizes) {
  auto sizes = MakeBufferSchedule(12, 10000, BufferSchedule::kGraefeGeometric);
  ASSERT_TRUE(sizes.ok());
  ASSERT_GE(sizes->size(), 4u);
  // Gaps grow with B under the geometric schedule.
  uint64_t first_gap = (*sizes)[1] - (*sizes)[0];
  uint64_t last_gap = (*sizes)[sizes->size() - 1] - (*sizes)[sizes->size() - 2];
  EXPECT_LT(first_gap, last_gap);
}

TEST(BufferScheduleTest, GeometricMatchesLinearPointCountApproximately) {
  auto linear = MakeBufferSchedule(12, 5000, BufferSchedule::kPaperLinear);
  auto geo = MakeBufferSchedule(12, 5000, BufferSchedule::kGraefeGeometric);
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(geo.ok());
  // Same catalog footprint: counts within ~20% of each other.
  double ratio =
      static_cast<double>(geo->size()) / static_cast<double>(linear->size());
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.3);
}

}  // namespace
}  // namespace epfis
