#include "epfis/trace_source.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "epfis/lru_fit.h"
#include "epfis/trace_io.h"
#include "util/random.h"

namespace epfis {
namespace {

std::vector<PageId> Drain(TraceSource& source, size_t chunk) {
  std::vector<PageId> out;
  std::vector<PageId> buf(chunk);
  for (;;) {
    auto n = source.Next(buf.data(), buf.size());
    EXPECT_TRUE(n.ok()) << n.status().ToString();
    if (!n.ok() || *n == 0) break;
    out.insert(out.end(), buf.begin(), buf.begin() + *n);
  }
  return out;
}

TEST(VectorTraceSourceTest, StreamsInChunksAndResets) {
  std::vector<PageId> trace{5, 4, 3, 2, 1, 0, 7};
  VectorTraceSource source = VectorTraceSource::View(trace);
  ASSERT_TRUE(source.size_hint().has_value());
  EXPECT_EQ(*source.size_hint(), trace.size());
  EXPECT_EQ(Drain(source, 3), trace);
  // Exhausted until Reset.
  PageId scratch[4];
  EXPECT_EQ(source.Next(scratch, 4).value(), 0u);
  ASSERT_TRUE(source.Reset().ok());
  EXPECT_EQ(Drain(source, 100), trace);
}

TEST(VectorTraceSourceTest, OwningConstructorKeepsData) {
  std::vector<PageId> trace{1, 2, 3};
  VectorTraceSource source(std::move(trace));
  EXPECT_EQ(Drain(source, 2), (std::vector<PageId>{1, 2, 3}));
}

TEST(FileTraceSourceTest, RoundTripsThroughTraceFile) {
  Rng rng(7);
  std::vector<PageId> trace;
  for (int i = 0; i < 10'000; ++i) {
    trace.push_back(static_cast<PageId>(rng.NextBounded(333)));
  }
  const std::string path = "/tmp/epfis_trace_source_test.bin";
  ASSERT_TRUE(SavePageTrace(trace, path).ok());

  auto source = FileTraceSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ASSERT_TRUE(source->size_hint().has_value());
  EXPECT_EQ(*source->size_hint(), trace.size());
  // Chunk size deliberately not a divisor of the trace length.
  EXPECT_EQ(Drain(*source, 4097), trace);
  ASSERT_TRUE(source->Reset().ok());
  EXPECT_EQ(Drain(*source, 256), trace);
  std::remove(path.c_str());
}

TEST(FileTraceSourceTest, MissingFileFails) {
  EXPECT_FALSE(FileTraceSource::Open("/tmp/epfis_no_such_trace.bin").ok());
}

TEST(PageTraceReaderTest, DetectsTruncatedBody) {
  const std::string path = "/tmp/epfis_truncated_trace.bin";
  ASSERT_TRUE(SavePageTrace({1, 2, 3, 4, 5}, path).ok());
  // Chop off the last entry's bytes.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    long size = (std::fseek(f, 0, SEEK_END), std::ftell(f));
    ASSERT_EQ(ftruncate(fileno(f), size - 2), 0);
    std::fclose(f);
  }
  auto reader = PageTraceReader::Open(path);
  ASSERT_TRUE(reader.ok());
  PageId buf[16];
  EXPECT_FALSE(reader->Read(buf, 16).ok());
  std::remove(path.c_str());
}

TEST(RunLruFitTest, TraceSourceMatchesVectorOverload) {
  Rng rng(17);
  std::vector<PageId> trace;
  for (int i = 0; i < 15'000; ++i) {
    trace.push_back(static_cast<PageId>(rng.NextBounded(400)));
  }
  auto from_vector = RunLruFit(trace, 400, 50, "idx");
  ASSERT_TRUE(from_vector.ok());

  const std::string path = "/tmp/epfis_lrufit_source_test.bin";
  ASSERT_TRUE(SavePageTrace(trace, path).ok());
  auto source = FileTraceSource::Open(path);
  ASSERT_TRUE(source.ok());
  auto from_file = RunLruFit(*source, 400, 50, "idx");
  ASSERT_TRUE(from_file.ok());
  std::remove(path.c_str());

  EXPECT_EQ(from_file->table_records, from_vector->table_records);
  EXPECT_EQ(from_file->pages_accessed, from_vector->pages_accessed);
  EXPECT_EQ(from_file->f_min, from_vector->f_min);
  EXPECT_DOUBLE_EQ(from_file->clustering, from_vector->clustering);
  for (double b : {12.0, 50.0, 200.0, 400.0}) {
    EXPECT_DOUBLE_EQ(from_file->FullScanFetches(b),
                     from_vector->FullScanFetches(b));
  }
}

TEST(LruFitOptionsTest, ValidateCatchesBadOptions) {
  LruFitOptions ok;
  EXPECT_TRUE(ok.Validate().ok());

  LruFitOptions zero_segments;
  zero_segments.num_segments = 0;
  EXPECT_EQ(zero_segments.Validate().code(), StatusCode::kInvalidArgument);

  LruFitOptions zero_b_sml;
  zero_b_sml.b_sml = 0;
  EXPECT_EQ(zero_b_sml.Validate().code(), StatusCode::kInvalidArgument);

  LruFitOptions inverted;
  inverted.b_min_override = 100;
  inverted.b_max_override = 50;
  EXPECT_EQ(inverted.Validate().code(), StatusCode::kInvalidArgument);

  // RunLruFit surfaces the same error before touching the trace.
  auto stats = RunLruFit({1, 2, 3}, 10, 3, "x", inverted);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace epfis
