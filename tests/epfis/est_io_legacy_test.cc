// Pinned behavior of the deprecated double-returning Est-IO wrappers.
//
// EstimatePageFetches / EstimateFullScanFetches are kept (deprecated) for
// out-of-tree callers that relied on clamp-don't-reject semantics: sigma
// and sargable_selectivity silently clamp into range, buffer_pages == 0
// computes on an empty buffer, and invalid input can never surface as an
// error. This file is the one in-repo caller left on purpose — it pins
// that contract, and pins the wrappers to the validating EstIo entry
// points bit-for-bit on valid input (everything funnels through the same
// evaluation core).
#include "epfis/est_io.h"

#include <gtest/gtest.h>

// The whole point of this file is to call the deprecated API.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace epfis {
namespace {

IndexStats MakeStats(double clustering = 0.5) {
  IndexStats stats;
  stats.index_name = "legacy";
  stats.table_pages = 1000;
  stats.table_records = 40000;
  stats.distinct_keys = 2000;
  stats.pages_accessed = 1000;
  stats.b_min = 12;
  stats.b_max = 1000;
  stats.f_min = 30000;
  stats.clustering = clustering;
  stats.fpf = PiecewiseLinear::FromKnots({{12, 30000},
                                          {100, 15000},
                                          {300, 6000},
                                          {600, 2500},
                                          {1000, 1000}})
                  .value();
  return stats;
}

TEST(EstIoLegacyTest, AgreesWithValidatingApiOnValidInput) {
  IndexStats stats = MakeStats();
  for (double sigma : {0.01, 0.2, 1.0}) {
    for (double sarg : {0.1, 1.0}) {
      ScanSpec scan{sigma, sarg, 300};
      auto validated = EstIo::Estimate(stats, scan);
      ASSERT_TRUE(validated.ok());
      EXPECT_DOUBLE_EQ(*validated, EstimatePageFetches(stats, scan));
    }
  }
  auto full = EstIo::EstimateFullScan(stats, 200);
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(*full, EstimateFullScanFetches(stats, 200));
}

TEST(EstIoLegacyTest, SigmaClampedToUnitInterval) {
  IndexStats stats = MakeStats();
  double over = EstimatePageFetches(stats, {1.7, 1.0, 300});
  double exact = EstimatePageFetches(stats, {1.0, 1.0, 300});
  EXPECT_DOUBLE_EQ(over, exact);
  double under = EstimatePageFetches(stats, {-0.5, 1.0, 300});
  EXPECT_EQ(under, 0.0);
}

TEST(EstIoLegacyTest, ZeroSargableSelectivityClampsToZero) {
  // The validating API rejects sargable_selectivity = 0 (domain (0, 1]);
  // the legacy wrapper clamps and returns the degenerate zero estimate.
  IndexStats stats = MakeStats();
  EXPECT_EQ(EstimatePageFetches(stats, {0.5, 0.0, 500}), 0.0);
  EXPECT_EQ(EstimatePageFetches(stats, {0.5, -0.3, 500}), 0.0);
}

TEST(EstIoLegacyTest, ZeroBufferPagesStillComputes) {
  // B = 0 is rejected by EstIo::Estimate but silently evaluated by the
  // wrapper (the curve clamps at its leftmost knot).
  IndexStats stats = MakeStats();
  EXPECT_GE(EstimatePageFetches(stats, ScanSpec{0.5, 1.0, 0}), 0.0);
  EXPECT_GE(EstimateFullScanFetches(stats, 0), 0.0);
}

TEST(EstIoLegacyTest, BadOptionThresholdsAreNotRejected) {
  // Options validation is a validating-API behavior; the wrapper keeps
  // computing (producing whatever the formula produces) so legacy callers
  // never start seeing crashes from a new reject path.
  IndexStats stats = MakeStats();
  EstIoOptions options;
  options.enable_correction = false;
  options.correction_divisor = 0.0;  // Unused with correction disabled.
  double est = EstimatePageFetches(stats, {0.5, 1.0, 300}, options);
  EXPECT_NEAR(est, 0.5 * EstimateFullScanFetches(stats, 300), 1e-9);
}

}  // namespace
}  // namespace epfis
