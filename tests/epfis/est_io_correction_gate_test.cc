// Regression tests for two Est-IO edge cases:
//
//  1. The validating entry points must reject buffer_pages == 0 with
//     InvalidArgument (a scan with no buffer cannot be costed by the FPF
//     model) instead of silently evaluating the curve at B = 0.
//  2. The §4.2 correction gate: the Cardenas term is added iff nu = 1,
//     where nu = 1 iff phi >= nu_threshold * sigma, and the damping factor
//     min(1, phi / (divisor * sigma)) shares the same phi. Pinned
//     table-driven against hand-computed values of the paper's Equation 1
//     on both sides of the gate boundary, in both phi interpretations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "epfis/est_io.h"
#include "util/formulas.h"

namespace epfis {
namespace {

// Same catalog entry as est_io_test.cc: 1000-page, 40000-record table,
// FPF falling from 30000 fetches at B=12 to 1000 at B=T.
IndexStats MakeStats(double clustering = 0.5) {
  IndexStats stats;
  stats.index_name = "gate_test";
  stats.table_pages = 1000;
  stats.table_records = 40000;
  stats.distinct_keys = 2000;
  stats.pages_accessed = 1000;
  stats.b_min = 12;
  stats.b_max = 1000;
  stats.f_min = 30000;
  stats.clustering = clustering;
  stats.fpf = PiecewiseLinear::FromKnots({{12, 30000},
                                          {100, 15000},
                                          {300, 6000},
                                          {600, 2500},
                                          {1000, 1000}})
                  .value();
  return stats;
}

TEST(EstIoCorrectionGateTest, ZeroBufferPagesIsInvalidArgument) {
  IndexStats stats = MakeStats();

  ScanSpec scan;
  scan.sigma = 0.5;
  scan.sargable_selectivity = 1.0;
  scan.buffer_pages = 0;
  auto estimate = EstIo::Estimate(stats, scan);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kInvalidArgument);

  auto full_scan = EstIo::EstimateFullScan(stats, 0);
  ASSERT_FALSE(full_scan.ok());
  EXPECT_EQ(full_scan.status().code(), StatusCode::kInvalidArgument);

  // One buffer page is the smallest valid request and must succeed.
  scan.buffer_pages = 1;
  EXPECT_TRUE(EstIo::Estimate(stats, scan).ok());
  EXPECT_TRUE(EstIo::EstimateFullScan(stats, 1).ok());
}

struct GateCase {
  const char* name;
  PhiMode phi_mode;
  double nu_threshold;
  double sigma;
  uint64_t buffer_pages;
  double clustering;
  bool expect_correction;  // Whether nu should be 1 for these inputs.
};

TEST(EstIoCorrectionGateTest, NuGateMatchesEquationOneOnBothSides) {
  // phi depends only on B/T: with B <= T the paper's phi = max(1, B/T) is
  // always 1, so the kPaperMax gate reduces to sigma <= 1/nu_threshold;
  // the kMin reading phi = min(1, B/T) = B/T makes the gate genuinely
  // buffer-dependent. The boundary itself (phi == nu_threshold * sigma)
  // counts as inside the gate (>=).
  const GateCase kCases[] = {
      {"paper_phi_below_gate", PhiMode::kPaperMax, 3.0, 1.0 / 3.0, 500, 0.2,
       true},
      {"paper_phi_above_gate", PhiMode::kPaperMax, 3.0, 0.34, 500, 0.2,
       false},
      {"paper_phi_small_sigma", PhiMode::kPaperMax, 3.0, 0.01, 500, 0.2,
       true},
      {"min_phi_below_gate", PhiMode::kMin, 3.0, 0.15, 500, 0.2, true},
      {"min_phi_above_gate", PhiMode::kMin, 3.0, 0.2, 500, 0.2, false},
      {"min_phi_tiny_buffer", PhiMode::kMin, 3.0, 0.15, 100, 0.2, false},
      {"custom_threshold_admits", PhiMode::kPaperMax, 2.0, 0.4, 500, 0.2,
       true},
      {"custom_threshold_rejects", PhiMode::kPaperMax, 4.0, 0.3, 500, 0.2,
       false},
      {"clustered_correction_vanishes", PhiMode::kPaperMax, 3.0, 0.01, 500,
       1.0, true},  // nu = 1 but (1 - C) = 0: correction contributes 0.
  };

  for (const GateCase& c : kCases) {
    SCOPED_TRACE(c.name);
    IndexStats stats = MakeStats(c.clustering);
    EstIoOptions options;
    options.phi_mode = c.phi_mode;
    options.nu_threshold = c.nu_threshold;

    ScanSpec scan;
    scan.sigma = c.sigma;
    scan.sargable_selectivity = 1.0;
    scan.buffer_pages = c.buffer_pages;

    auto result = EstIo::Estimate(stats, scan, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // Hand-evaluate Equation 1 (§4.2) for the same inputs.
    double t = 1000.0;
    double n = 40000.0;
    double ratio = static_cast<double>(c.buffer_pages) / t;
    double phi = c.phi_mode == PhiMode::kPaperMax ? std::max(1.0, ratio)
                                                  : std::min(1.0, ratio);
    double nu = phi >= c.nu_threshold * c.sigma ? 1.0 : 0.0;
    EXPECT_EQ(nu == 1.0, c.expect_correction);
    double damping =
        std::min(1.0, phi / (options.correction_divisor * c.sigma));
    double base =
        c.sigma * EstIo::EstimateFullScan(stats, c.buffer_pages).value();
    double expected = base + nu * damping * (1.0 - c.clustering) *
                                 CardenasPages(t, c.sigma * n);
    expected = Clamp(expected, 0.0, c.sigma * n);
    EXPECT_NEAR(*result, expected, 1e-9);

    // The gate must change the estimate exactly when it admits the term
    // (unless clustering already zeroes it out).
    EstIoOptions no_correction = options;
    no_correction.enable_correction = false;
    auto without = EstIo::Estimate(stats, scan, no_correction);
    ASSERT_TRUE(without.ok());
    double base_clamped = Clamp(base, 0.0, c.sigma * n);
    EXPECT_NEAR(*without, base_clamped, 1e-9);
    if (c.expect_correction && c.clustering < 1.0) {
      EXPECT_GT(*result, *without);
    } else {
      EXPECT_NEAR(*result, *without, 1e-9);
    }
  }
}

TEST(EstIoCorrectionGateTest, GateAndDampingShareTheSamePhi) {
  // Worked example pinned end to end: sigma = 0.3, C = 0, B = 500,
  // paper phi = max(1, 500/1000) = 1.
  //   nu      = 1                  (gate: 1 >= 3 * 0.3 = 0.9 holds)
  //   damping = min(1, 1 / (6 * 0.3)) = 1/1.8
  //   base    = 0.3 * PF_500
  //   correction = nu * damping * (1 - 0) * Cardenas(1000, 12000)
  IndexStats stats = MakeStats(0.0);
  ScanSpec scan;
  scan.sigma = 0.3;
  scan.sargable_selectivity = 1.0;
  scan.buffer_pages = 500;
  auto result = EstIo::Estimate(stats, scan);
  ASSERT_TRUE(result.ok());

  double pf_500 = EstIo::EstimateFullScan(stats, 500).value();
  // Interpolated on the (300, 6000)-(600, 2500) segment: 6000 - 3500*2/3.
  EXPECT_NEAR(pf_500, 11000.0 / 3.0, 1e-9);
  double expected =
      0.3 * pf_500 + (1.0 / 1.8) * CardenasPages(1000.0, 0.3 * 40000.0);
  EXPECT_NEAR(*result, expected, 1e-9);
}

}  // namespace
}  // namespace epfis
