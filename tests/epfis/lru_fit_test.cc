#include "epfis/lru_fit.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "buffer/lru_simulator.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace epfis {
namespace {

// A clustered trace: pages in order, `reps` references each.
std::vector<PageId> ClusteredTrace(uint32_t pages, int reps) {
  std::vector<PageId> trace;
  for (PageId p = 0; p < pages; ++p) {
    for (int r = 0; r < reps; ++r) trace.push_back(p);
  }
  return trace;
}

// A maximally unclustered trace: round-robin over all pages.
std::vector<PageId> RoundRobinTrace(uint32_t pages, int rounds) {
  std::vector<PageId> trace;
  for (int r = 0; r < rounds; ++r) {
    for (PageId p = 0; p < pages; ++p) trace.push_back(p);
  }
  return trace;
}

TEST(LruFitTest, RejectsEmptyTrace) {
  EXPECT_FALSE(RunLruFit({}, 10, 5, "x").ok());
}

TEST(LruFitTest, RejectsZeroSegments) {
  LruFitOptions options;
  options.num_segments = 0;
  EXPECT_FALSE(RunLruFit({1, 2, 3}, 10, 3, "x", options).ok());
}

TEST(LruFitTest, AdaptiveSamplingWithPoolIsInvalidArgument) {
  // Regression: this combination used to *silently* fall back to the
  // serial kernel (parallel_stack_distance.cc routes adaptive runs
  // serial); now the option mix is rejected up front so nobody asks for a
  // sharded run and unknowingly gets a serial one.
  ThreadPool pool(2);
  LruFitOptions options;
  options.pool = &pool;
  options.sample_max_pages = 64;
  EXPECT_FALSE(options.Validate().ok());
  auto stats = RunLruFit({1, 2, 3, 1, 2, 3}, 10, 3, "x", options);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);

  // Each knob alone stays valid: adaptive-serial and sharded-exact.
  options.pool = nullptr;
  EXPECT_TRUE(options.Validate().ok());
  options.pool = &pool;
  options.sample_max_pages = 0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(LruFitTest, ClusteredIndexHasCOne) {
  auto trace = ClusteredTrace(200, 5);
  auto stats = RunLruFit(trace, 200, 100, "clustered");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->table_pages, 200u);
  EXPECT_EQ(stats->table_records, trace.size());
  EXPECT_EQ(stats->pages_accessed, 200u);
  EXPECT_DOUBLE_EQ(stats->clustering, 1.0);
  // F == A == T at every buffer size for a clustered index.
  EXPECT_EQ(stats->f_min, 200u);
  for (double b : {12.0, 50.0, 100.0, 200.0}) {
    EXPECT_NEAR(stats->FullScanFetches(b), 200.0, 1e-9) << "b=" << b;
  }
}

TEST(LruFitTest, RoundRobinIsMaximallyUnclustered) {
  // Round-robin over 200 pages with any B < 200 misses on every access.
  auto trace = RoundRobinTrace(200, 5);
  auto stats = RunLruFit(trace, 200, 100, "roundrobin");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->f_min, trace.size());
  EXPECT_NEAR(stats->clustering, 0.0, 1e-12);
  // At B = T everything fits after the first round.
  EXPECT_NEAR(stats->FullScanFetches(200.0), 200.0, 1e-9);
}

TEST(LruFitTest, DefaultRangeFollowsPaper) {
  auto trace = ClusteredTrace(5000, 2);
  auto stats = RunLruFit(trace, 5000, 100, "x");
  ASSERT_TRUE(stats.ok());
  // B_min = max(0.01 * 5000, 12) = 50, B_max = T.
  EXPECT_EQ(stats->b_min, 50u);
  EXPECT_EQ(stats->b_max, 5000u);

  auto small = RunLruFit(ClusteredTrace(100, 2), 100, 10, "y");
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->b_min, 12u);  // 0.01 * 100 = 1 < B_sml = 12.
}

TEST(LruFitTest, DbaOverridesRespected) {
  LruFitOptions options;
  options.b_min_override = 30;
  options.b_max_override = 90;
  auto stats = RunLruFit(ClusteredTrace(100, 3), 100, 10, "x", options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->b_min, 30u);
  EXPECT_EQ(stats->b_max, 90u);
  ASSERT_TRUE(stats->fpf.has_value());
  EXPECT_DOUBLE_EQ(stats->fpf->min_x(), 30.0);
  EXPECT_DOUBLE_EQ(stats->fpf->max_x(), 90.0);
}

TEST(LruFitTest, SegmentCountBounded) {
  Rng rng(41);
  std::vector<PageId> trace;
  for (int i = 0; i < 20000; ++i) {
    trace.push_back(static_cast<PageId>(rng.NextBounded(1000)));
  }
  for (int segments : {1, 2, 3, 6, 10}) {
    LruFitOptions options;
    options.num_segments = segments;
    auto stats = RunLruFit(trace, 1000, 100, "x", options);
    ASSERT_TRUE(stats.ok());
    ASSERT_TRUE(stats->fpf.has_value());
    EXPECT_LE(stats->fpf->num_segments(),
              static_cast<size_t>(segments));
  }
}

TEST(LruFitTest, FitMatchesSimulatedFetchesAtSampledSizes) {
  // Moderately unclustered trace; the 6-segment fit should track the true
  // curve closely (within a few percent) at the sampled sizes.
  Rng rng(43);
  std::vector<PageId> trace;
  PageId page = 0;
  for (int i = 0; i < 30000; ++i) {
    if (rng.NextBernoulli(0.7)) {
      page = (page + 1) % 500;  // Mostly sequential.
    } else {
      page = static_cast<PageId>(rng.NextBounded(500));
    }
    trace.push_back(page);
  }
  auto stats = RunLruFit(trace, 500, 100, "x");
  ASSERT_TRUE(stats.ok());

  for (uint64_t b : {20ULL, 60ULL, 150ULL, 400ULL, 500ULL}) {
    uint64_t actual = CountLruFetches(trace, b);
    double fitted = stats->FullScanFetches(static_cast<double>(b));
    EXPECT_NEAR(fitted, static_cast<double>(actual),
                0.10 * static_cast<double>(actual) + 50.0)
        << "b=" << b;
  }
}

TEST(LruFitTest, ExtrapolationClampedToPhysicalBounds) {
  auto trace = RoundRobinTrace(100, 10);
  auto stats = RunLruFit(trace, 100, 10, "x");
  ASSERT_TRUE(stats.ok());
  // Below the modeled range F can never exceed N.
  EXPECT_LE(stats->FullScanFetches(1.0),
            static_cast<double>(trace.size()) + 1e-9);
  // Beyond T a full scan still reads every accessed page once.
  EXPECT_GE(stats->FullScanFetches(100000.0), 100.0 - 1e-9);
}

TEST(LruFitTest, GeometricScheduleAlsoFits) {
  LruFitOptions options;
  options.schedule = BufferSchedule::kGraefeGeometric;
  auto stats = RunLruFit(RoundRobinTrace(300, 4), 300, 30, "x", options);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->fpf.has_value());
}

TEST(LruFitTest, RejectsInvalidSampleRate) {
  for (double bad : {0.0, -0.5, 1.0000001, 2.0,
                     std::numeric_limits<double>::quiet_NaN()}) {
    LruFitOptions options;
    options.sample_rate = bad;
    auto stats = RunLruFit({1, 2, 3}, 10, 3, "x", options);
    EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument)
        << "rate=" << bad;
  }
}

TEST(LruFitTest, SampledRunRecordsProvenance) {
  Rng rng(53);
  std::vector<PageId> trace;
  for (int i = 0; i < 40'000; ++i) {
    trace.push_back(static_cast<PageId>(rng.NextBounded(2'000)));
  }
  LruFitOptions options;
  options.sample_rate = 0.1;
  auto stats = RunLruFit(trace, 2'000, 200, "sampled", options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Provenance: the effective rate lands on the quantized threshold near
  // the request, and the sampled-ref count is a ~10% subset.
  EXPECT_NEAR(stats->sample_rate, 0.1, 1e-6);
  EXPECT_GT(stats->sampled_refs, 0u);
  EXPECT_LT(stats->sampled_refs, trace.size() / 2);
  // N stays exact (the filter counts what it drops).
  EXPECT_EQ(stats->table_records, trace.size());
  // Estimates stay physical: A <= T, F_min <= N.
  EXPECT_LE(stats->pages_accessed, stats->table_pages);
  EXPECT_LE(stats->f_min, stats->table_records);
  EXPECT_GE(stats->clustering, 0.0);
  EXPECT_LE(stats->clustering, 1.0);

  // The sampled stats track the exact run's headline numbers closely on
  // this trace (deterministic hash — no flake).
  auto exact = RunLruFit(trace, 2'000, 200, "exact");
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(exact->sample_rate, 1.0);
  EXPECT_EQ(exact->sampled_refs, trace.size());
  EXPECT_NEAR(stats->clustering, exact->clustering, 0.05);
  EXPECT_NEAR(static_cast<double>(stats->f_min),
              static_cast<double>(exact->f_min),
              0.05 * static_cast<double>(exact->f_min));
}

TEST(LruFitTest, AdaptiveSampledRunCapsPages) {
  Rng rng(54);
  std::vector<PageId> trace;
  for (int i = 0; i < 30'000; ++i) {
    trace.push_back(static_cast<PageId>(rng.NextBounded(3'000)));
  }
  LruFitOptions options;
  options.sample_max_pages = 128;
  auto stats = RunLruFit(trace, 3'000, 300, "adaptive", options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_LT(stats->sample_rate, 1.0);
  EXPECT_LT(stats->sampled_refs, trace.size());
  EXPECT_EQ(stats->table_records, trace.size());
  EXPECT_LE(stats->pages_accessed, 3'000u);
}

TEST(SampleFpfCurveTest, MonotoneNonIncreasing) {
  Rng rng(47);
  std::vector<PageId> trace;
  for (int i = 0; i < 10000; ++i) {
    trace.push_back(static_cast<PageId>(rng.NextBounded(400)));
  }
  auto points = SampleFpfCurve(trace, 12, 400,
                               BufferSchedule::kPaperLinear);
  ASSERT_TRUE(points.ok());
  ASSERT_GE(points->size(), 3u);
  for (size_t i = 1; i < points->size(); ++i) {
    EXPECT_LE((*points)[i].fetches, (*points)[i - 1].fetches);
    EXPECT_GT((*points)[i].buffer_size, (*points)[i - 1].buffer_size);
  }
  // Every value agrees with the direct simulation.
  for (const FpfPoint& p : *points) {
    EXPECT_EQ(p.fetches, CountLruFetches(trace, p.buffer_size));
  }
}

TEST(SampleFpfCurveTest, EmptyTraceFails) {
  EXPECT_FALSE(
      SampleFpfCurve({}, 12, 100, BufferSchedule::kPaperLinear).ok());
}

}  // namespace
}  // namespace epfis
