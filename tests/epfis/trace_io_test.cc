#include "epfis/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "epfis/lru_fit.h"
#include "util/random.h"

namespace epfis {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/epfis_trace_test.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(TraceIoTest, PageTraceRoundTrip) {
  Rng rng(19);
  std::vector<PageId> trace;
  for (int i = 0; i < 10000; ++i) {
    trace.push_back(static_cast<PageId>(rng.NextBounded(500)));
  }
  ASSERT_TRUE(SavePageTrace(trace, path_).ok());
  auto loaded = LoadPageTrace(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, trace);
}

TEST_F(TraceIoTest, EmptyPageTraceRoundTrip) {
  ASSERT_TRUE(SavePageTrace({}, path_).ok());
  auto loaded = LoadPageTrace(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(TraceIoTest, KeyPageTraceRoundTrip) {
  std::vector<KeyPageRef> trace;
  for (int64_t k = 0; k < 3000; ++k) {
    trace.push_back(KeyPageRef{k / 3, static_cast<PageId>(k % 97)});
  }
  ASSERT_TRUE(SaveKeyPageTrace(trace, path_).ok());
  auto loaded = LoadKeyPageTrace(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*loaded)[i].key, trace[i].key);
    EXPECT_EQ((*loaded)[i].page, trace[i].page);
  }
}

TEST_F(TraceIoTest, WrongMagicRejected) {
  ASSERT_TRUE(SavePageTrace({1, 2, 3}, path_).ok());
  // A page trace is not a key-page trace.
  EXPECT_EQ(LoadKeyPageTrace(path_).status().code(), StatusCode::kCorruption);
}

TEST_F(TraceIoTest, TruncationDetected) {
  ASSERT_TRUE(SavePageTrace({1, 2, 3, 4, 5, 6, 7, 8}, path_).ok());
  // Chop the file mid-body.
  std::ifstream in(path_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() - 6));
  out.close();
  EXPECT_EQ(LoadPageTrace(path_).status().code(), StatusCode::kCorruption);
}

TEST_F(TraceIoTest, TrailingGarbageDetected) {
  ASSERT_TRUE(SavePageTrace({1, 2, 3}, path_).ok());
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  out.write("junk", 4);
  out.close();
  EXPECT_EQ(LoadPageTrace(path_).status().code(), StatusCode::kCorruption);
}

TEST_F(TraceIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadPageTrace("/no/such/dir/file.bin").status().code(),
            StatusCode::kIoError);
}

TEST_F(TraceIoTest, OfflineLruFitFromPersistedTrace) {
  // The decoupled workflow: persist the statistics scan, replay LRU-Fit
  // offline, get identical catalog statistics.
  Rng rng(23);
  std::vector<PageId> trace;
  PageId page = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBernoulli(0.8)) page = (page + 1) % 300;
    else page = static_cast<PageId>(rng.NextBounded(300));
    trace.push_back(page);
  }
  auto live = RunLruFit(trace, 300, 100, "idx").value();

  ASSERT_TRUE(SavePageTrace(trace, path_).ok());
  auto replayed_trace = LoadPageTrace(path_);
  ASSERT_TRUE(replayed_trace.ok());
  auto offline = RunLruFit(*replayed_trace, 300, 100, "idx").value();

  EXPECT_EQ(offline.f_min, live.f_min);
  EXPECT_DOUBLE_EQ(offline.clustering, live.clustering);
  EXPECT_EQ(offline.fpf->knots(), live.fpf->knots());
}

}  // namespace
}  // namespace epfis
