#include "epfis/est_io.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/formulas.h"

namespace epfis {
namespace {

// Catalog entry for a mildly unclustered index over a 1000-page,
// 40000-record table: FPF falls from 30000 fetches at B=12 to 1000 at B=T.
IndexStats MakeStats(double clustering = 0.5) {
  IndexStats stats;
  stats.index_name = "test";
  stats.table_pages = 1000;
  stats.table_records = 40000;
  stats.distinct_keys = 2000;
  stats.pages_accessed = 1000;
  stats.b_min = 12;
  stats.b_max = 1000;
  stats.f_min = 30000;
  stats.clustering = clustering;
  stats.fpf = PiecewiseLinear::FromKnots({{12, 30000},
                                          {100, 15000},
                                          {300, 6000},
                                          {600, 2500},
                                          {1000, 1000}})
                  .value();
  return stats;
}

TEST(EstIoTest, FullScanFollowsCurve) {
  IndexStats stats = MakeStats();
  EXPECT_NEAR(EstimateFullScanFetches(stats, 12), 30000, 1e-9);
  EXPECT_NEAR(EstimateFullScanFetches(stats, 100), 15000, 1e-9);
  EXPECT_NEAR(EstimateFullScanFetches(stats, 200), 10500, 1e-9);  // Interp.
  EXPECT_NEAR(EstimateFullScanFetches(stats, 1000), 1000, 1e-9);
}

TEST(EstIoTest, ZeroSelectivityIsZero) {
  IndexStats stats = MakeStats();
  EXPECT_EQ(EstimatePageFetches(stats, {0.0, 1.0, 500}), 0.0);
  EXPECT_EQ(EstimatePageFetches(stats, {0.5, 0.0, 500}), 0.0);
}

TEST(EstIoTest, FullScanSigmaOneMatchesCurveValue) {
  IndexStats stats = MakeStats();
  // sigma = 1: nu triggers only if phi >= 3, impossible with B <= T under
  // the paper's phi = max(1, B/T); estimate is exactly PF_B.
  ScanSpec scan{1.0, 1.0, 300};
  EXPECT_NEAR(EstimatePageFetches(stats, scan), 6000.0, 1e-9);
}

TEST(EstIoTest, LargeSigmaScalesLinearly) {
  IndexStats stats = MakeStats();
  // sigma = 0.5 > 1/3: correction off; estimate = sigma * PF_B.
  ScanSpec scan{0.5, 1.0, 300};
  EXPECT_NEAR(EstimatePageFetches(stats, scan), 3000.0, 1e-9);
}

TEST(EstIoTest, SmallSigmaGetsCorrection) {
  IndexStats stats = MakeStats(0.2);  // Quite unclustered.
  double sigma = 0.01;
  uint64_t b = 500;
  double base = sigma * EstimateFullScanFetches(stats, b);
  double est = EstimatePageFetches(stats, {sigma, 1.0, b});
  EXPECT_GT(est, base);  // Correction term added.

  // Hand-compute Equation 1: phi = max(1, 0.5) = 1, nu = 1 (1 >= 0.03),
  // damping = min(1, 1/(6*0.01)) = 1.
  double cardenas = CardenasPages(1000.0, sigma * 40000.0);
  double expected = base + 1.0 * (1.0 - 0.2) * cardenas;
  EXPECT_NEAR(est, expected, 1e-9);
}

TEST(EstIoTest, CorrectionDampedNearThreshold) {
  IndexStats stats = MakeStats(0.0);
  // sigma = 0.3: nu = 1 (1 >= 0.9), damping = min(1, 1/1.8) = 0.5556.
  double sigma = 0.3;
  double est = EstimatePageFetches(stats, {sigma, 1.0, 500});
  double base = sigma * EstimateFullScanFetches(stats, 500);
  double damping = 1.0 / (6.0 * sigma);
  double cardenas = CardenasPages(1000.0, sigma * 40000.0);
  EXPECT_NEAR(est, base + damping * cardenas, 1e-9);
}

TEST(EstIoTest, NoCorrectionAboveNuThreshold) {
  IndexStats stats = MakeStats(0.0);
  // sigma = 0.4 > 1/3: nu = 0 under phi = 1.
  double est = EstimatePageFetches(stats, {0.4, 1.0, 500});
  EXPECT_NEAR(est, 0.4 * EstimateFullScanFetches(stats, 500), 1e-9);
}

TEST(EstIoTest, ClusteredIndexGetsNoCorrection) {
  IndexStats stats = MakeStats(1.0);  // (1 - C) = 0 kills the term.
  double sigma = 0.01;
  double est = EstimatePageFetches(stats, {sigma, 1.0, 500});
  EXPECT_NEAR(est, sigma * EstimateFullScanFetches(stats, 500), 1e-9);
}

TEST(EstIoTest, CorrectionCanBeDisabled) {
  IndexStats stats = MakeStats(0.0);
  EstIoOptions options;
  options.enable_correction = false;
  double est = EstimatePageFetches(stats, {0.01, 1.0, 500}, options);
  EXPECT_NEAR(est, 0.01 * EstimateFullScanFetches(stats, 500), 1e-9);
}

TEST(EstIoTest, PhiMinModeShrinksCorrectionForSmallBuffers) {
  IndexStats stats = MakeStats(0.0);
  EstIoOptions min_mode;
  min_mode.phi_mode = PhiMode::kMin;
  // B/T = 0.6, sigma = 0.15: both modes trigger nu, but min-mode damping
  // is 0.6/0.9 < 1 while max-mode damping saturates at 1. (sigma is large
  // enough that the final estimate stays below the qualifying-records
  // clamp in both modes.)
  double est_max = EstimatePageFetches(stats, {0.15, 1.0, 600});
  double est_min = EstimatePageFetches(stats, {0.15, 1.0, 600}, min_mode);
  EXPECT_LT(est_min, est_max);
  // And with sigma large relative to B/T, min-mode disables nu entirely:
  // phi_min = 0.6 < 3 * 0.25 while phi_max = 1 >= 0.75.
  double est_min2 = EstimatePageFetches(stats, {0.25, 1.0, 600}, min_mode);
  EXPECT_NEAR(est_min2, 0.25 * EstimateFullScanFetches(stats, 600), 1e-9);
  double est_max2 = EstimatePageFetches(stats, {0.25, 1.0, 600});
  EXPECT_GT(est_max2, est_min2);
}

TEST(EstIoTest, SargablePredicateReducesEstimate) {
  IndexStats stats = MakeStats(0.5);
  ScanSpec plain{0.2, 1.0, 500};
  ScanSpec filtered{0.2, 0.1, 500};
  double est_plain = EstimatePageFetches(stats, plain);
  double est_filtered = EstimatePageFetches(stats, filtered);
  EXPECT_LT(est_filtered, est_plain);
  EXPECT_GT(est_filtered, 0.0);
}

TEST(EstIoTest, SargableMatchesUrnFormula) {
  IndexStats stats = MakeStats(0.5);
  double sigma = 0.5, s = 0.25;
  uint64_t b = 300;
  double base = EstimatePageFetches(stats, {sigma, 1.0, b});
  double t = 1000, n = 40000, c = 0.5;
  double q = c * sigma * t + (1 - c) * std::min(t, sigma * n);
  double k = s * sigma * n;
  double factor = 1.0 - std::pow(1.0 - 1.0 / q, k);
  EXPECT_NEAR(EstimatePageFetches(stats, {sigma, s, b}), base * factor,
              1e-6 * base);
}

TEST(EstIoTest, NeverExceedsQualifyingRecords) {
  IndexStats stats = MakeStats(0.0);
  for (double sigma : {0.001, 0.01, 0.1, 0.5, 1.0}) {
    for (double s : {0.01, 0.5, 1.0}) {
      for (uint64_t b : {12ULL, 100ULL, 1000ULL}) {
        double est = EstimatePageFetches(stats, {sigma, s, b});
        EXPECT_LE(est, sigma * s * 40000.0 + 1e-9)
            << "sigma=" << sigma << " s=" << s << " b=" << b;
        EXPECT_GE(est, 0.0);
      }
    }
  }
}

TEST(EstIoTest, SigmaClampedToUnitInterval) {
  IndexStats stats = MakeStats();
  double over = EstimatePageFetches(stats, {1.7, 1.0, 300});
  double exact = EstimatePageFetches(stats, {1.0, 1.0, 300});
  EXPECT_DOUBLE_EQ(over, exact);
}

TEST(EstIoTest, MonotoneInBufferSizeForFullScans) {
  IndexStats stats = MakeStats();
  double prev = 1e300;
  for (uint64_t b = 12; b <= 1000; b += 50) {
    double est = EstimatePageFetches(stats, {1.0, 1.0, b});
    EXPECT_LE(est, prev + 1e-9) << "b=" << b;
    prev = est;
  }
}

TEST(EstIoTest, MissingCurveYieldsZeroFullScan) {
  IndexStats stats;  // No fpf set.
  stats.table_pages = 10;
  stats.table_records = 100;
  EXPECT_EQ(stats.FullScanFetches(5.0), 0.0);
}

TEST(EstIoValidatingTest, AgreesWithLegacyOnValidInput) {
  IndexStats stats = MakeStats();
  for (double sigma : {0.01, 0.2, 1.0}) {
    for (double sarg : {0.1, 1.0}) {
      ScanSpec scan{sigma, sarg, 300};
      auto validated = EstIo::Estimate(stats, scan);
      ASSERT_TRUE(validated.ok());
      EXPECT_DOUBLE_EQ(*validated, EstimatePageFetches(stats, scan));
    }
  }
  auto full = EstIo::EstimateFullScan(stats, 200);
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(*full, EstimateFullScanFetches(stats, 200));
}

TEST(EstIoValidatingTest, RejectsOutOfDomainSigma) {
  IndexStats stats = MakeStats();
  for (double sigma : {-0.1, 1.5, std::nan("")}) {
    ScanSpec scan{sigma, 1.0, 300};
    auto result = EstIo::Estimate(stats, scan);
    EXPECT_FALSE(result.ok()) << "sigma=" << sigma;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  // The boundary values 0 and 1 are legal.
  EXPECT_TRUE(EstIo::Estimate(stats, ScanSpec{0.0, 1.0, 300}).ok());
  EXPECT_TRUE(EstIo::Estimate(stats, ScanSpec{1.0, 1.0, 300}).ok());
}

TEST(EstIoValidatingTest, RejectsOutOfDomainSargableSelectivity) {
  IndexStats stats = MakeStats();
  for (double sarg : {0.0, -0.5, 1.2, std::nan("")}) {
    ScanSpec scan{0.5, sarg, 300};
    auto result = EstIo::Estimate(stats, scan);
    EXPECT_FALSE(result.ok()) << "sarg=" << sarg;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE(EstIo::Estimate(stats, ScanSpec{0.5, 1.0, 300}).ok());
}

TEST(EstIoValidatingTest, RejectsZeroBufferPages) {
  IndexStats stats = MakeStats();
  EXPECT_EQ(EstIo::Estimate(stats, ScanSpec{0.5, 1.0, 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EstIo::EstimateFullScan(stats, 0).status().code(),
            StatusCode::kInvalidArgument);
  // The legacy wrappers still silently compute on the same inputs.
  EXPECT_GE(EstimatePageFetches(stats, ScanSpec{0.5, 1.0, 0}), 0.0);
}

}  // namespace
}  // namespace epfis
