#include "epfis/est_io.h"

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/stats_catalog.h"
#include "util/formulas.h"

namespace epfis {
namespace {

// Catalog entry for a mildly unclustered index over a 1000-page,
// 40000-record table: FPF falls from 30000 fetches at B=12 to 1000 at B=T.
IndexStats MakeStats(double clustering = 0.5) {
  IndexStats stats;
  stats.index_name = "test";
  stats.table_pages = 1000;
  stats.table_records = 40000;
  stats.distinct_keys = 2000;
  stats.pages_accessed = 1000;
  stats.b_min = 12;
  stats.b_max = 1000;
  stats.f_min = 30000;
  stats.clustering = clustering;
  stats.fpf = PiecewiseLinear::FromKnots({{12, 30000},
                                          {100, 15000},
                                          {300, 6000},
                                          {600, 2500},
                                          {1000, 1000}})
                  .value();
  return stats;
}

double Estimate(const IndexStats& stats, const ScanSpec& scan,
                const EstIoOptions& options = {}) {
  return EstIo::Estimate(stats, scan, options).value();
}

double FullScan(const IndexStats& stats, uint64_t buffer_pages) {
  return EstIo::EstimateFullScan(stats, buffer_pages).value();
}

TEST(EstIoTest, FullScanFollowsCurve) {
  IndexStats stats = MakeStats();
  EXPECT_NEAR(FullScan(stats, 12), 30000, 1e-9);
  EXPECT_NEAR(FullScan(stats, 100), 15000, 1e-9);
  EXPECT_NEAR(FullScan(stats, 200), 10500, 1e-9);  // Interp.
  EXPECT_NEAR(FullScan(stats, 1000), 1000, 1e-9);
}

TEST(EstIoTest, ZeroSelectivityIsZero) {
  IndexStats stats = MakeStats();
  EXPECT_EQ(Estimate(stats, {0.0, 1.0, 500}), 0.0);
}

TEST(EstIoTest, FullScanSigmaOneMatchesCurveValue) {
  IndexStats stats = MakeStats();
  // sigma = 1: nu triggers only if phi >= 3, impossible with B <= T under
  // the paper's phi = max(1, B/T); estimate is exactly PF_B.
  ScanSpec scan{1.0, 1.0, 300};
  EXPECT_NEAR(Estimate(stats, scan), 6000.0, 1e-9);
}

TEST(EstIoTest, LargeSigmaScalesLinearly) {
  IndexStats stats = MakeStats();
  // sigma = 0.5 > 1/3: correction off; estimate = sigma * PF_B.
  ScanSpec scan{0.5, 1.0, 300};
  EXPECT_NEAR(Estimate(stats, scan), 3000.0, 1e-9);
}

TEST(EstIoTest, SmallSigmaGetsCorrection) {
  IndexStats stats = MakeStats(0.2);  // Quite unclustered.
  double sigma = 0.01;
  uint64_t b = 500;
  double base = sigma * FullScan(stats, b);
  double est = Estimate(stats, {sigma, 1.0, b});
  EXPECT_GT(est, base);  // Correction term added.

  // Hand-compute Equation 1: phi = max(1, 0.5) = 1, nu = 1 (1 >= 0.03),
  // damping = min(1, 1/(6*0.01)) = 1.
  double cardenas = CardenasPages(1000.0, sigma * 40000.0);
  double expected = base + 1.0 * (1.0 - 0.2) * cardenas;
  EXPECT_NEAR(est, expected, 1e-9);
}

TEST(EstIoTest, CorrectionDampedNearThreshold) {
  IndexStats stats = MakeStats(0.0);
  // sigma = 0.3: nu = 1 (1 >= 0.9), damping = min(1, 1/1.8) = 0.5556.
  double sigma = 0.3;
  double est = Estimate(stats, {sigma, 1.0, 500});
  double base = sigma * FullScan(stats, 500);
  double damping = 1.0 / (6.0 * sigma);
  double cardenas = CardenasPages(1000.0, sigma * 40000.0);
  EXPECT_NEAR(est, base + damping * cardenas, 1e-9);
}

TEST(EstIoTest, NoCorrectionAboveNuThreshold) {
  IndexStats stats = MakeStats(0.0);
  // sigma = 0.4 > 1/3: nu = 0 under phi = 1.
  double est = Estimate(stats, {0.4, 1.0, 500});
  EXPECT_NEAR(est, 0.4 * FullScan(stats, 500), 1e-9);
}

TEST(EstIoTest, ClusteredIndexGetsNoCorrection) {
  IndexStats stats = MakeStats(1.0);  // (1 - C) = 0 kills the term.
  double sigma = 0.01;
  double est = Estimate(stats, {sigma, 1.0, 500});
  EXPECT_NEAR(est, sigma * FullScan(stats, 500), 1e-9);
}

TEST(EstIoTest, CorrectionCanBeDisabled) {
  IndexStats stats = MakeStats(0.0);
  EstIoOptions options;
  options.enable_correction = false;
  double est = Estimate(stats, {0.01, 1.0, 500}, options);
  EXPECT_NEAR(est, 0.01 * FullScan(stats, 500), 1e-9);
}

TEST(EstIoTest, PhiMinModeShrinksCorrectionForSmallBuffers) {
  IndexStats stats = MakeStats(0.0);
  EstIoOptions min_mode;
  min_mode.phi_mode = PhiMode::kMin;
  // B/T = 0.6, sigma = 0.15: both modes trigger nu, but min-mode damping
  // is 0.6/0.9 < 1 while max-mode damping saturates at 1. (sigma is large
  // enough that the final estimate stays below the qualifying-records
  // clamp in both modes.)
  double est_max = Estimate(stats, {0.15, 1.0, 600});
  double est_min = Estimate(stats, {0.15, 1.0, 600}, min_mode);
  EXPECT_LT(est_min, est_max);
  // And with sigma large relative to B/T, min-mode disables nu entirely:
  // phi_min = 0.6 < 3 * 0.25 while phi_max = 1 >= 0.75.
  double est_min2 = Estimate(stats, {0.25, 1.0, 600}, min_mode);
  EXPECT_NEAR(est_min2, 0.25 * FullScan(stats, 600), 1e-9);
  double est_max2 = Estimate(stats, {0.25, 1.0, 600});
  EXPECT_GT(est_max2, est_min2);
}

TEST(EstIoTest, SargablePredicateReducesEstimate) {
  IndexStats stats = MakeStats(0.5);
  ScanSpec plain{0.2, 1.0, 500};
  ScanSpec filtered{0.2, 0.1, 500};
  double est_plain = Estimate(stats, plain);
  double est_filtered = Estimate(stats, filtered);
  EXPECT_LT(est_filtered, est_plain);
  EXPECT_GT(est_filtered, 0.0);
}

TEST(EstIoTest, SargableMatchesUrnFormula) {
  IndexStats stats = MakeStats(0.5);
  double sigma = 0.5, s = 0.25;
  uint64_t b = 300;
  double base = Estimate(stats, {sigma, 1.0, b});
  double t = 1000, n = 40000, c = 0.5;
  double q = c * sigma * t + (1 - c) * std::min(t, sigma * n);
  double k = s * sigma * n;
  double factor = 1.0 - std::pow(1.0 - 1.0 / q, k);
  EXPECT_NEAR(Estimate(stats, {sigma, s, b}), base * factor, 1e-6 * base);
}

TEST(EstIoTest, NeverExceedsQualifyingRecords) {
  IndexStats stats = MakeStats(0.0);
  for (double sigma : {0.001, 0.01, 0.1, 0.5, 1.0}) {
    for (double s : {0.01, 0.5, 1.0}) {
      for (uint64_t b : {12ULL, 100ULL, 1000ULL}) {
        double est = Estimate(stats, {sigma, s, b});
        EXPECT_LE(est, sigma * s * 40000.0 + 1e-9)
            << "sigma=" << sigma << " s=" << s << " b=" << b;
        EXPECT_GE(est, 0.0);
      }
    }
  }
}

TEST(EstIoTest, MonotoneInBufferSizeForFullScans) {
  IndexStats stats = MakeStats();
  double prev = 1e300;
  for (uint64_t b = 12; b <= 1000; b += 50) {
    double est = Estimate(stats, {1.0, 1.0, b});
    EXPECT_LE(est, prev + 1e-9) << "b=" << b;
    prev = est;
  }
}

TEST(EstIoTest, MissingCurveYieldsZeroFullScan) {
  IndexStats stats;  // No fpf set.
  stats.table_pages = 10;
  stats.table_records = 100;
  EXPECT_EQ(stats.FullScanFetches(5.0), 0.0);
}

TEST(EstIoValidatingTest, RejectsOutOfDomainSigma) {
  IndexStats stats = MakeStats();
  for (double sigma : {-0.1, 1.5, std::nan("")}) {
    ScanSpec scan{sigma, 1.0, 300};
    auto result = EstIo::Estimate(stats, scan);
    EXPECT_FALSE(result.ok()) << "sigma=" << sigma;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  // The boundary values 0 and 1 are legal.
  EXPECT_TRUE(EstIo::Estimate(stats, ScanSpec{0.0, 1.0, 300}).ok());
  EXPECT_TRUE(EstIo::Estimate(stats, ScanSpec{1.0, 1.0, 300}).ok());
}

TEST(EstIoValidatingTest, RejectsOutOfDomainSargableSelectivity) {
  IndexStats stats = MakeStats();
  for (double sarg : {0.0, -0.5, 1.2, std::nan("")}) {
    ScanSpec scan{0.5, sarg, 300};
    auto result = EstIo::Estimate(stats, scan);
    EXPECT_FALSE(result.ok()) << "sarg=" << sarg;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE(EstIo::Estimate(stats, ScanSpec{0.5, 1.0, 300}).ok());
}

TEST(EstIoValidatingTest, RejectsZeroBufferPages) {
  IndexStats stats = MakeStats();
  EXPECT_EQ(EstIo::Estimate(stats, ScanSpec{0.5, 1.0, 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EstIo::EstimateFullScan(stats, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EstIoValidatingTest, RejectsBadOptionThresholds) {
  IndexStats stats = MakeStats();
  ScanSpec scan{0.5, 1.0, 300};
  for (double bad : {0.0, -3.0, std::nan("")}) {
    EstIoOptions options;
    options.nu_threshold = bad;
    auto result = EstIo::Estimate(stats, scan, options);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << "nu_threshold=" << bad;

    options = EstIoOptions{};
    options.correction_divisor = bad;
    result = EstIo::Estimate(stats, scan, options);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << "correction_divisor=" << bad;
  }
  // Unusual but positive values are accepted.
  EstIoOptions loose;
  loose.nu_threshold = 0.5;
  loose.correction_divisor = 100.0;
  EXPECT_TRUE(EstIo::Estimate(stats, scan, loose).ok());
}

TEST(EstIoValidatingTest, BadOptionsRejectedOnEveryEntryPoint) {
  IndexStats stats = MakeStats();
  EstIoOptions bad;
  bad.correction_divisor = 0.0;
  ScanSpec scan{0.5, 1.0, 300};
  TableShape shape{1000, 40000};

  StatsCatalog catalog;
  catalog.Put(stats);
  EXPECT_EQ(EstIo::EstimateFromCatalog(catalog, "test", scan, shape, bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  auto snapshot = CatalogSnapshot::Build({{"test", stats}}, {}, 1);
  EXPECT_EQ(EstIo::EstimateFromCatalog(*snapshot, "test", scan, shape, bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  BatchProbe probe{snapshot->Resolve("test"), scan, shape};
  CatalogEstimate out;
  EXPECT_EQ(EstIo::EstimateBatch(*snapshot, {&probe, 1}, {&out, 1}, bad)
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace epfis
