// Parameterized property sweeps over Est-IO: invariants that must hold for
// every (clustering, sigma, buffer, sargable-S) combination.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "epfis/est_io.h"

namespace epfis {
namespace {

IndexStats StatsWithClustering(double c) {
  IndexStats stats;
  stats.index_name = "prop";
  stats.table_pages = 2000;
  stats.table_records = 80000;
  stats.distinct_keys = 4000;
  stats.pages_accessed = 2000;
  stats.b_min = 20;
  stats.b_max = 2000;
  stats.clustering = c;
  // FPF curve shape interpolating between the clustered floor (T) and the
  // unclustered ceiling (N) according to C: a plausible family.
  double f_min = 2000 + (1.0 - c) * (80000 - 2000);
  stats.f_min = static_cast<uint64_t>(f_min);
  stats.fpf = PiecewiseLinear::FromKnots(
                  {{20, f_min},
                   {200, 2000 + 0.55 * (f_min - 2000)},
                   {700, 2000 + 0.18 * (f_min - 2000)},
                   {2000, 2000}})
                  .value();
  return stats;
}

double Estimate(const IndexStats& stats, const ScanSpec& scan,
                const EstIoOptions& options = {}) {
  return EstIo::Estimate(stats, scan, options).value();
}

class EstIoPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EstIoPropertyTest, EstimateWithinPhysicalBounds) {
  auto [c, s_sargable] = GetParam();
  IndexStats stats = StatsWithClustering(c);
  for (double sigma :
       {0.0, 0.001, 0.01, 0.05, 0.1, 0.2, 0.34, 0.5, 0.8, 1.0}) {
    for (uint64_t b : {1ULL, 20ULL, 100ULL, 500ULL, 2000ULL, 5000ULL}) {
      double est = Estimate(stats, {sigma, s_sargable, b});
      ASSERT_TRUE(std::isfinite(est));
      ASSERT_GE(est, 0.0);
      // Never more than one fetch per qualifying record.
      ASSERT_LE(est, sigma * s_sargable * 80000.0 + 1e-9)
          << "c=" << c << " sigma=" << sigma << " b=" << b;
    }
  }
}

TEST_P(EstIoPropertyTest, MonotoneInSargableSelectivity) {
  auto [c, unused] = GetParam();
  (void)unused;
  IndexStats stats = StatsWithClustering(c);
  for (double sigma : {0.05, 0.3, 1.0}) {
    for (uint64_t b : {50ULL, 800ULL}) {
      double prev = -1.0;
      for (double s : {0.01, 0.1, 0.3, 0.6, 1.0}) {
        double est = Estimate(stats, {sigma, s, b});
        ASSERT_GE(est, prev - 1e-9)
            << "c=" << c << " sigma=" << sigma << " b=" << b << " s=" << s;
        prev = est;
      }
    }
  }
}

TEST_P(EstIoPropertyTest, MonotoneInSigmaWhenCorrectionDisabled) {
  auto [c, s_sargable] = GetParam();
  IndexStats stats = StatsWithClustering(c);
  EstIoOptions options;
  options.enable_correction = false;
  for (uint64_t b : {20ULL, 400ULL, 2000ULL}) {
    double prev = -1.0;
    for (double sigma : {0.01, 0.05, 0.1, 0.3, 0.6, 1.0}) {
      double est = Estimate(stats, {sigma, s_sargable, b}, options);
      ASSERT_GE(est, prev - 1e-9) << "b=" << b << " sigma=" << sigma;
      prev = est;
    }
  }
}

TEST_P(EstIoPropertyTest, FullScanNonIncreasingInBuffer) {
  auto [c, s_sargable] = GetParam();
  (void)s_sargable;
  IndexStats stats = StatsWithClustering(c);
  double prev = 1e300;
  for (uint64_t b = 20; b <= 2400; b += 20) {
    double est = EstIo::EstimateFullScan(stats, b).value();
    ASSERT_LE(est, prev + 1e-9) << "b=" << b;
    prev = est;
  }
}

TEST_P(EstIoPropertyTest, MoreClusteredNeverCostsMore) {
  auto [c, s_sargable] = GetParam();
  if (c >= 0.99) return;  // Need headroom for the comparison.
  // Holds only without sargable predicates: the urn factor deliberately
  // reduces *unclustered* scans more (records spread over more pages means
  // a dropped record more often skips a whole page), which can invert the
  // ordering. With S = 1 the property is exact.
  if (s_sargable < 1.0) return;
  IndexStats less = StatsWithClustering(c);
  IndexStats more = StatsWithClustering(std::min(1.0, c + 0.3));
  for (double sigma : {0.02, 0.1, 0.5, 1.0}) {
    for (uint64_t b : {20ULL, 200ULL, 2000ULL}) {
      double est_less = Estimate(less, {sigma, s_sargable, b});
      double est_more = Estimate(more, {sigma, s_sargable, b});
      ASSERT_LE(est_more, est_less + 1e-9)
          << "c=" << c << " sigma=" << sigma << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EstIoPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                       ::testing::Values(0.05, 0.5, 1.0)));

}  // namespace
}  // namespace epfis
