// EstIo::EstimateBatch: bit-identity with the single-probe entry points,
// probe-order independence, and per-probe degradation semantics.
#include "epfis/est_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog_snapshot.h"

namespace epfis {
namespace {

IndexStats MakeStats(const std::string& name, uint64_t pages,
                     double clustering) {
  IndexStats stats;
  stats.index_name = name;
  stats.table_pages = pages;
  stats.table_records = pages * 40;
  stats.distinct_keys = pages * 2;
  stats.pages_accessed = pages;
  stats.b_min = 12;
  stats.b_max = pages;
  stats.f_min = static_cast<double>(pages) * 1.2;
  stats.clustering = clustering;
  stats.fpf =
      PiecewiseLinear::FromKnots({{12, static_cast<double>(pages) * 30},
                                  {static_cast<double>(pages) * 0.1,
                                   static_cast<double>(pages) * 12},
                                  {static_cast<double>(pages) * 0.3,
                                   static_cast<double>(pages) * 4},
                                  {static_cast<double>(pages),
                                   static_cast<double>(pages) * 1.2}})
          .value();
  return stats;
}

std::shared_ptr<const CatalogSnapshot> MakeSnapshot() {
  std::map<std::string, IndexStats> entries;
  entries.emplace("aaa.key", MakeStats("aaa.key", 1000, 0.9));
  entries.emplace("bbb.key", MakeStats("bbb.key", 4000, 0.3));
  entries.emplace("ccc.key", MakeStats("ccc.key", 700, 0.0));
  return CatalogSnapshot::Build(std::move(entries), {}, 1);
}

TableShape ShapeFor(const CatalogSnapshot& snapshot,
                    CatalogSnapshot::Handle handle) {
  const IndexStatsView& view = snapshot.ViewAt(handle);
  return TableShape{view.table_pages, view.table_records};
}

// The core acceptance gate: for every (index, sigma, B) in a sweep, the
// batch result is *exactly* (==, not nearly) the single-probe snapshot
// overload, which is itself exactly EstIo::Estimate on the same stats.
TEST(EstIoBatchTest, BitIdenticalToSingleProbeAcrossSweep) {
  std::shared_ptr<const CatalogSnapshot> snapshot = MakeSnapshot();
  const std::vector<double> sigmas = {0.001, 0.01, 0.1, 0.25,
                                      0.5,   0.75, 1.0};
  const std::vector<uint64_t> buffers = {1,   8,    64,   256,
                                         700, 1000, 4000, 100000};

  std::vector<BatchProbe> probes;
  for (const std::string& name : snapshot->IndexNames()) {
    CatalogSnapshot::Handle handle = snapshot->Resolve(name);
    ASSERT_TRUE(handle.valid());
    TableShape shape = ShapeFor(*snapshot, handle);
    for (double sigma : sigmas) {
      for (uint64_t b : buffers) {
        probes.push_back(BatchProbe{handle, {sigma, 1.0, b}, shape});
        probes.push_back(BatchProbe{handle, {sigma, 0.2, b}, shape});
      }
    }
  }
  std::vector<CatalogEstimate> results(probes.size());
  ASSERT_TRUE(EstIo::EstimateBatch(*snapshot, probes, results).ok());

  std::vector<std::string> names = snapshot->IndexNames();
  for (size_t i = 0; i < probes.size(); ++i) {
    const BatchProbe& probe = probes[i];
    SCOPED_TRACE("probe " + std::to_string(i));
    EXPECT_EQ(results[i].source, EstimateSource::kLruFitCurve);

    const std::string& name = names[probe.index.slot];
    auto single = EstIo::EstimateFromCatalog(*snapshot, name, probe.scan,
                                             probe.shape);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(results[i].fetches, single->fetches);  // Exact, not NEAR.

    IndexStats materialized = snapshot->Get(name).value();
    auto direct = EstIo::Estimate(materialized, probe.scan);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(results[i].fetches, *direct);
  }
}

TEST(EstIoBatchTest, ProbeOrderDoesNotChangeResults) {
  std::shared_ptr<const CatalogSnapshot> snapshot = MakeSnapshot();
  std::vector<BatchProbe> grouped;
  for (const std::string& name : snapshot->IndexNames()) {
    CatalogSnapshot::Handle handle = snapshot->Resolve(name);
    TableShape shape = ShapeFor(*snapshot, handle);
    for (uint64_t b : {16u, 128u, 512u}) {
      grouped.push_back(BatchProbe{handle, {0.3, 0.7, b}, shape});
    }
  }
  // An interleaved order (slots 0,1,2,0,1,2,...) exercises the
  // sort-by-slot permutation path; the grouped order skips it. Results
  // must be identical position-for-position either way.
  std::vector<BatchProbe> interleaved;
  for (size_t j = 0; j < 3; ++j) {
    for (size_t g = j; g < grouped.size(); g += 3) {
      interleaved.push_back(grouped[g]);
    }
  }
  ASSERT_EQ(interleaved.size(), grouped.size());

  std::vector<CatalogEstimate> grouped_results(grouped.size());
  std::vector<CatalogEstimate> interleaved_results(interleaved.size());
  ASSERT_TRUE(
      EstIo::EstimateBatch(*snapshot, grouped, grouped_results).ok());
  ASSERT_TRUE(
      EstIo::EstimateBatch(*snapshot, interleaved, interleaved_results)
          .ok());

  for (size_t i = 0; i < interleaved.size(); ++i) {
    auto single = EstIo::EstimateFromCatalog(
        *snapshot,
        snapshot->IndexNames()[interleaved[i].index.slot],
        interleaved[i].scan, interleaved[i].shape);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(interleaved_results[i].fetches, single->fetches);
  }
}

TEST(EstIoBatchTest, RejectedProbeDoesNotAffectNeighbors) {
  std::shared_ptr<const CatalogSnapshot> snapshot = MakeSnapshot();
  CatalogSnapshot::Handle handle = snapshot->Resolve("aaa.key");
  TableShape shape = ShapeFor(*snapshot, handle);

  ScanSpec good{0.4, 1.0, 300};
  std::vector<BatchProbe> probes = {
      BatchProbe{handle, good, shape},
      BatchProbe{handle, {2.5, 1.0, 300}, shape},   // sigma out of range
      BatchProbe{handle, {0.4, 0.0, 300}, shape},   // sargable = 0
      BatchProbe{handle, {0.4, 1.0, 0}, shape},     // B = 0
      BatchProbe{handle, good, shape},
  };
  std::vector<CatalogEstimate> results(probes.size());
  ASSERT_TRUE(EstIo::EstimateBatch(*snapshot, probes, results).ok());

  for (size_t i : {1u, 2u, 3u}) {
    SCOPED_TRACE("probe " + std::to_string(i));
    EXPECT_EQ(results[i].source, EstimateSource::kRejected);
    EXPECT_EQ(results[i].fetches, 0.0);
    EXPECT_EQ(results[i].stats_status.code(),
              StatusCode::kInvalidArgument);
  }
  auto single =
      EstIo::EstimateFromCatalog(*snapshot, "aaa.key", good, shape);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(results[0].fetches, single->fetches);
  EXPECT_EQ(results[4].fetches, single->fetches);
  EXPECT_EQ(results[0].source, EstimateSource::kLruFitCurve);
  EXPECT_EQ(results[4].source, EstimateSource::kLruFitCurve);
}

TEST(EstIoBatchTest, InvalidHandleDegradesToFormulaFallback) {
  std::shared_ptr<const CatalogSnapshot> snapshot = MakeSnapshot();
  CatalogSnapshot::Handle miss = snapshot->Resolve("no-such-index");
  ASSERT_FALSE(miss.valid());
  TableShape shape{1000, 40000};

  std::vector<BatchProbe> probes = {
      BatchProbe{miss, {0.1, 1.0, 200}, shape}};
  std::vector<CatalogEstimate> results(1);
  ASSERT_TRUE(EstIo::EstimateBatch(*snapshot, probes, results).ok());
  EXPECT_EQ(results[0].source, EstimateSource::kFormulaFallback);
  EXPECT_EQ(results[0].stats_status.code(), StatusCode::kNotFound);
  EXPECT_GT(results[0].fetches, 0.0);

  // Same provenance and value as a by-name miss on the single path.
  auto single = EstIo::EstimateFromCatalog(*snapshot, "no-such-index",
                                           {0.1, 1.0, 200}, shape);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(results[0].fetches, single->fetches);
  EXPECT_EQ(single->source, EstimateSource::kFormulaFallback);
}

TEST(EstIoBatchTest, QuarantinedEntryDegradesWithCorruption) {
  // Entries and quarantine are disjoint (the StatsCatalog invariant):
  // a quarantined name resolves but carries no stats payload.
  std::map<std::string, IndexStats> entries;
  entries.emplace("good.key", MakeStats("good.key", 1000, 0.5));
  std::map<std::string, std::string> quarantined;
  quarantined["hurt.key"] = "checksum mismatch (test)";
  std::shared_ptr<const CatalogSnapshot> snapshot =
      CatalogSnapshot::Build(std::move(entries), std::move(quarantined), 1);

  CatalogSnapshot::Handle good = snapshot->Resolve("good.key");
  CatalogSnapshot::Handle hurt = snapshot->Resolve("hurt.key");
  ASSERT_TRUE(good.valid());
  ASSERT_TRUE(hurt.valid());
  TableShape shape{1000, 40000};

  std::vector<BatchProbe> probes = {
      BatchProbe{good, {0.2, 1.0, 300}, shape},
      BatchProbe{hurt, {0.2, 1.0, 300}, shape},
  };
  std::vector<CatalogEstimate> results(2);
  ASSERT_TRUE(EstIo::EstimateBatch(*snapshot, probes, results).ok());

  EXPECT_EQ(results[0].source, EstimateSource::kLruFitCurve);
  EXPECT_TRUE(results[0].stats_status.ok());
  EXPECT_EQ(results[1].source, EstimateSource::kFormulaFallback);
  EXPECT_EQ(results[1].stats_status.code(), StatusCode::kCorruption);
  // The degraded number comes from Yao over the table shape — identical
  // to what the by-name path reports for the same quarantined entry.
  auto single = EstIo::EstimateFromCatalog(*snapshot, "hurt.key",
                                           {0.2, 1.0, 300}, shape);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(results[1].fetches, single->fetches);
}

TEST(EstIoBatchTest, ResultsSpanTooSmallIsInvalidArgument) {
  std::shared_ptr<const CatalogSnapshot> snapshot = MakeSnapshot();
  CatalogSnapshot::Handle handle = snapshot->Resolve("aaa.key");
  TableShape shape = ShapeFor(*snapshot, handle);
  std::vector<BatchProbe> probes(3,
                                 BatchProbe{handle, {0.5, 1.0, 100}, shape});
  std::vector<CatalogEstimate> results(2);
  Status status = EstIo::EstimateBatch(*snapshot, probes, results);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(EstIoBatchTest, ForeignHandleFailsWholeBatch) {
  std::shared_ptr<const CatalogSnapshot> snapshot = MakeSnapshot();
  // A handle with a slot beyond this snapshot can only have come from a
  // different (larger) snapshot — a caller bug, so the batch fails as a
  // unit and no results are produced.
  CatalogSnapshot::Handle foreign;
  foreign.slot = static_cast<uint32_t>(snapshot->size());
  ASSERT_TRUE(foreign.valid());
  TableShape shape{1000, 40000};

  CatalogSnapshot::Handle handle = snapshot->Resolve("aaa.key");
  std::vector<BatchProbe> probes = {
      BatchProbe{handle, {0.5, 1.0, 100}, shape},
      BatchProbe{foreign, {0.5, 1.0, 100}, shape},
  };
  std::vector<CatalogEstimate> results(2);
  results[0].fetches = -1.0;  // Sentinel: must remain untouched.
  Status status = EstIo::EstimateBatch(*snapshot, probes, results);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(results[0].fetches, -1.0);
}

TEST(EstIoBatchTest, EmptyBatchIsOk) {
  std::shared_ptr<const CatalogSnapshot> snapshot = MakeSnapshot();
  EXPECT_TRUE(EstIo::EstimateBatch(*snapshot, {}, {}).ok());
}

}  // namespace
}  // namespace epfis
