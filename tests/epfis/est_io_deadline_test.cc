// EstIoOptions::{cancel, deadline} on EstimateBatch: expired budgets shed
// unprocessed probes with kRejected provenance instead of failing (or
// indefinitely extending) the batch, and the unguarded default stays
// bit-identical to a guarded batch whose budget never ran out.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog_snapshot.h"
#include "epfis/est_io.h"
#include "util/cancel.h"

namespace epfis {
namespace {

IndexStats MakeStats(const std::string& name, uint64_t pages) {
  IndexStats stats;
  stats.index_name = name;
  stats.table_pages = pages;
  stats.table_records = pages * 40;
  stats.distinct_keys = pages * 2;
  stats.pages_accessed = pages;
  stats.b_min = 12;
  stats.b_max = pages;
  stats.f_min = static_cast<double>(pages) * 1.2;
  stats.clustering = 0.5;
  stats.fpf =
      PiecewiseLinear::FromKnots({{12, static_cast<double>(pages) * 30},
                                  {static_cast<double>(pages),
                                   static_cast<double>(pages) * 1.2}})
          .value();
  return stats;
}

std::shared_ptr<const CatalogSnapshot> MakeSnapshot() {
  std::map<std::string, IndexStats> entries;
  entries.emplace("ix.key", MakeStats("ix.key", 1000));
  return CatalogSnapshot::Build(std::move(entries), {}, 1);
}

std::vector<BatchProbe> MakeProbes(const CatalogSnapshot& snapshot,
                                   size_t n) {
  CatalogSnapshot::Handle handle = snapshot.Resolve("ix.key");
  EXPECT_TRUE(handle.valid());
  const IndexStatsView& view = snapshot.ViewAt(handle);
  TableShape shape{view.table_pages, view.table_records};
  std::vector<BatchProbe> probes;
  for (size_t i = 0; i < n; ++i) {
    probes.push_back(BatchProbe{handle, {0.2, 1.0, 64 + i}, shape});
  }
  return probes;
}

TEST(EstIoDeadlineTest, ExpiredDeadlineShedsEveryProbeAsRejected) {
  std::shared_ptr<const CatalogSnapshot> snapshot = MakeSnapshot();
  std::vector<BatchProbe> probes = MakeProbes(*snapshot, 16);
  std::vector<CatalogEstimate> results(probes.size());

  EstIoOptions options;
  options.deadline = Deadline::AfterMillis(0);  // Already expired.
  ASSERT_TRUE(
      EstIo::EstimateBatch(*snapshot, probes, results, options).ok());
  for (size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE("probe " + std::to_string(i));
    EXPECT_EQ(results[i].source, EstimateSource::kRejected);
    EXPECT_EQ(results[i].fetches, 0.0);
    EXPECT_EQ(results[i].stats_status.code(),
              StatusCode::kDeadlineExceeded);
  }
}

TEST(EstIoDeadlineTest, FiredTokenShedsWithCancelledProvenance) {
  std::shared_ptr<const CatalogSnapshot> snapshot = MakeSnapshot();
  std::vector<BatchProbe> probes = MakeProbes(*snapshot, 8);
  std::vector<CatalogEstimate> results(probes.size());

  CancellationToken token = CancellationToken::Create();
  token.Cancel();
  EstIoOptions options;
  options.cancel = token;
  ASSERT_TRUE(
      EstIo::EstimateBatch(*snapshot, probes, results, options).ok());
  for (const CatalogEstimate& r : results) {
    EXPECT_EQ(r.source, EstimateSource::kRejected);
    EXPECT_EQ(r.stats_status.code(), StatusCode::kCancelled);
  }
}

TEST(EstIoDeadlineTest, GenerousBudgetIsBitIdenticalToUnguarded) {
  std::shared_ptr<const CatalogSnapshot> snapshot = MakeSnapshot();
  std::vector<BatchProbe> probes = MakeProbes(*snapshot, 32);

  std::vector<CatalogEstimate> unguarded(probes.size());
  ASSERT_TRUE(EstIo::EstimateBatch(*snapshot, probes, unguarded).ok());

  EstIoOptions options;
  options.cancel = CancellationToken::Create();  // Live but never fired.
  options.deadline = Deadline::After(std::chrono::hours(1));
  std::vector<CatalogEstimate> guarded(probes.size());
  ASSERT_TRUE(
      EstIo::EstimateBatch(*snapshot, probes, guarded, options).ok());

  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(guarded[i].source, EstimateSource::kLruFitCurve);
    EXPECT_EQ(guarded[i].fetches, unguarded[i].fetches);  // Exact.
  }
}

TEST(EstIoDeadlineTest, SingleProbeEntryPointsIgnoreTheBudget) {
  std::shared_ptr<const CatalogSnapshot> snapshot = MakeSnapshot();
  EstIoOptions options;
  options.deadline = Deadline::AfterMillis(0);

  CatalogSnapshot::Handle handle = snapshot->Resolve("ix.key");
  const IndexStatsView& view = snapshot->ViewAt(handle);
  TableShape shape{view.table_pages, view.table_records};
  auto est = EstIo::EstimateFromCatalog(*snapshot, "ix.key",
                                        {0.2, 1.0, 64}, shape, options);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->source, EstimateSource::kLruFitCurve);
}

}  // namespace
}  // namespace epfis
