// Online LRU-Fit: the streaming engine (DESIGN.md §14) and its drift
// policy. The convergence tests pin the engine to the batch subprogram it
// replaces — a stationary stream must reproduce the batch FPF curve — and
// the concurrency test drills the RCU contract: a publish storm must never
// block or corrupt concurrent EstimateBatch readers (run under TSan in CI).

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/decayed_window.h"
#include "catalog/stats_catalog.h"
#include "epfis/est_io.h"
#include "epfis/lru_fit.h"
#include "epfis/online_lru_fit.h"
#include "util/fault.h"
#include "util/random.h"
#include "util/zipf.h"

namespace epfis {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<PageId> MakeZipfTrace(size_t refs, uint64_t pages, double theta,
                                  uint64_t seed) {
  Rng rng(seed);
  auto zipf = ZipfDistribution::Make(pages, theta);
  EXPECT_TRUE(zipf.ok());
  std::vector<PageId> trace(refs);
  for (size_t i = 0; i < refs; ++i) {
    trace[i] = static_cast<PageId>(zipf->Sample(rng) - 1);
  }
  return trace;
}

// ---------------------------------------------------------------------------
// DriftDetector policy boundaries.

TEST(DriftDetectorTest, ErrorExactlyAtBandNeverTriggers) {
  DriftDetector detector(DriftDetectorOptions{0.05, 1});
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(detector.Observe(0.05));  // At the band, not above it.
    EXPECT_EQ(detector.streak(), 0);
  }
  EXPECT_TRUE(detector.Observe(0.05000001));
}

TEST(DriftDetectorTest, SingleInBandCheckResetsPatience) {
  DriftDetector detector(DriftDetectorOptions{0.05, 3});
  EXPECT_FALSE(detector.Observe(0.2));
  EXPECT_FALSE(detector.Observe(0.2));
  EXPECT_EQ(detector.streak(), 2);
  EXPECT_FALSE(detector.Observe(0.01));  // One healthy check wipes the streak.
  EXPECT_EQ(detector.streak(), 0);
  EXPECT_FALSE(detector.Observe(0.2));
  EXPECT_FALSE(detector.Observe(0.2));
  EXPECT_TRUE(detector.Observe(0.2));
}

TEST(DriftDetectorTest, NanLeavesStreakUnchanged) {
  DriftDetector detector(DriftDetectorOptions{0.05, 3});
  EXPECT_FALSE(detector.Observe(0.2));
  EXPECT_FALSE(detector.Observe(0.2));
  EXPECT_FALSE(detector.Observe(kNaN));  // No measurement: not evidence
  EXPECT_EQ(detector.streak(), 2);       // of drift, nor of health.
  EXPECT_TRUE(std::isnan(detector.last_error()));
  EXPECT_TRUE(detector.Observe(0.2));
}

TEST(DriftDetectorTest, NanBeforeAnyEvidenceStaysQuiet) {
  DriftDetector detector(DriftDetectorOptions{0.0, 1});
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(detector.Observe(kNaN));
    EXPECT_EQ(detector.streak(), 0);
  }
}

// ---------------------------------------------------------------------------
// Fractional tail queries on the decayed window.

TEST(DecayedReuseWindowTest, TailWeightAtInterpolatesBetweenBuckets) {
  DecayedReuseWindow window(1'000'000);  // Huge W: no visible decay.
  StackDistanceHistogram hist;
  hist.AddColdMiss();
  hist.AddDistances(1, 4);
  hist.AddDistances(2, 10);
  hist.AddDistances(5, 6);
  SamplingSummary summary;
  summary.total_refs = hist.accesses();
  window.Absorb(hist, summary);

  // At integer boundaries the fractional query is exactly the integer one.
  for (uint64_t b = 0; b <= 7; ++b) {
    EXPECT_DOUBLE_EQ(window.TailWeightAt(static_cast<double>(b)),
                     window.TailWeight(b))
        << "b=" << b;
  }
  EXPECT_DOUBLE_EQ(window.TailWeight(0), 20.0);
  EXPECT_DOUBLE_EQ(window.TailWeight(1), 16.0);

  // Between b and b+1 the boundary sweeps bucket b+1 linearly: at 0.25 a
  // quarter of bucket 1's weight (4) has left the tail.
  EXPECT_DOUBLE_EQ(window.TailWeightAt(0.25), 20.0 - 0.25 * 4.0);
  EXPECT_DOUBLE_EQ(window.TailWeightAt(1.5), 16.0 - 0.5 * 10.0);
  EXPECT_DOUBLE_EQ(window.TailWeightAt(4.75), 6.0 - 0.75 * 6.0);

  // Monotone non-increasing in b, even across empty buckets, and zero
  // (not negative) past the deepest bucket.
  double prev = window.TailWeightAt(0.0);
  for (double b = 0.1; b < 8.0; b += 0.1) {
    double cur = window.TailWeightAt(b);
    EXPECT_LE(cur, prev + 1e-12) << "b=" << b;
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(window.TailWeightAt(6.5), 0.0);
  EXPECT_DOUBLE_EQ(window.TailWeightAt(-1.0), window.TailWeight(0));
}

TEST(DriftDetectorTest, PatienceOneTriggersOnFirstExcursion) {
  DriftDetector detector(DriftDetectorOptions{0.05, 1});
  EXPECT_FALSE(detector.Observe(0.04));
  EXPECT_TRUE(detector.Observe(0.06));
}

TEST(DriftDetectorTest, TriggerPersistsUntilExplicitReset) {
  // A failed publish must not eat the evidence: the detector keeps
  // triggering until the caller resets after a *successful* publish.
  DriftDetector detector(DriftDetectorOptions{0.05, 2});
  EXPECT_FALSE(detector.Observe(0.2));
  EXPECT_TRUE(detector.Observe(0.2));
  EXPECT_TRUE(detector.Observe(0.2));
  detector.ResetStreak();
  EXPECT_FALSE(detector.Observe(0.2));
}

// ---------------------------------------------------------------------------
// Option validation.

TEST(OnlineLruFitOptionsTest, RejectsDegenerateKnobs) {
  OnlineLruFitOptions options;
  options.table_pages = 100;
  EXPECT_TRUE(options.Validate().ok());

  OnlineLruFitOptions bad = options;
  bad.table_pages = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = options;
  bad.window_refs = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = options;
  bad.refresh_interval = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = options;
  bad.drift.patience = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = options;
  bad.drift.band = kNaN;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = options;
  bad.sample_rate = 0.0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Convergence against batch LRU-Fit.

TEST(OnlineLruFitTest, OneShotExactRefreshReproducesBatchCurve) {
  // One exact (unsampled) refresh absorbing the whole history: the window
  // tail ratio collapses algebraically to the batch formula, so the
  // published entry must match batch LRU-Fit on the same trace to within
  // floating-point rounding.
  std::vector<PageId> trace = MakeZipfTrace(40000, 400, 0.8, 11);

  auto batch = RunLruFit(trace, 400, 100, "ix");
  ASSERT_TRUE(batch.ok());

  StatsCatalog catalog;
  OnlineLruFitOptions options;
  options.table_pages = 400;
  options.distinct_keys = 100;
  options.window_refs = trace.size() * 100;  // Negligible decay.
  options.refresh_interval = trace.size();   // Exactly one refresh, at the end.
  OnlineLruFit engine("ix", options, &catalog);
  ASSERT_TRUE(engine.Ingest(trace).ok());
  ASSERT_EQ(engine.refreshes(), 1u);
  ASSERT_EQ(engine.publishes(), 1u);  // Bootstrap.

  auto online = catalog.Get("ix");
  ASSERT_TRUE(online.ok());
  EXPECT_EQ(online->table_records, batch->table_records);
  EXPECT_EQ(online->pages_accessed, batch->pages_accessed);
  EXPECT_EQ(online->b_min, batch->b_min);
  EXPECT_EQ(online->b_max, batch->b_max);
  EXPECT_EQ(online->f_min, batch->f_min);
  EXPECT_EQ(online->online_generation, 1u);
  EXPECT_EQ(online->window_refs, options.window_refs);
  for (uint64_t b = online->b_min; b <= online->b_max; b += 7) {
    double expected = batch->FullScanFetches(static_cast<double>(b));
    EXPECT_NEAR(online->FullScanFetches(static_cast<double>(b)), expected,
                1e-6 * expected + 1e-6)
        << "buffer size " << b;
  }
}

TEST(OnlineLruFitTest, StationaryStreamConvergesToBatch) {
  // A stationary stream, windowed and refreshed many times, must land
  // within the sampling error band of the batch curve. Two claims, each
  // against the matching reference so the band stays tight:
  //   1. exact-mode online vs exact batch — pure windowing error;
  //   2. fixed-rate online vs batch at the *same* rate — the streaming
  //      estimator adds almost nothing on top of the sampling noise the
  //      batch estimator already carries (at the smallest knots a
  //      rate-0.1 batch run itself sits ~9% off exact, which is why the
  //      sampled curve is not compared against the exact one directly).
  const uint64_t kPages = 2000;
  std::vector<PageId> trace = MakeZipfTrace(200000, kPages, 0.8, 29);

  auto batch = RunLruFit(trace, kPages, 500, "ix");  // Exact reference.
  ASSERT_TRUE(batch.ok());
  LruFitOptions sampled_fit;
  sampled_fit.sample_rate = 0.1;
  auto batch_sampled = RunLruFit(trace, kPages, 500, "ixs", sampled_fit);
  ASSERT_TRUE(batch_sampled.ok());

  auto run_online = [&](double rate, StatsCatalog* catalog) {
    OnlineLruFitOptions options;
    options.table_pages = kPages;
    options.distinct_keys = 500;
    options.window_refs = 100000;
    options.refresh_interval = 20000;
    options.sample_rate = rate;
    auto engine = std::make_unique<OnlineLruFit>("ix", options, catalog);
    EXPECT_TRUE(engine->Ingest(trace).ok());
    EXPECT_EQ(engine->refreshes(), 10u);
    return engine;
  };
  StatsCatalog exact_catalog;
  StatsCatalog sampled_catalog;
  auto exact_engine = run_online(1.0, &exact_catalog);
  auto sampled_engine = run_online(0.1, &sampled_catalog);

  auto max_rel_err = [&](const IndexStats& got, const IndexStats& want,
                         double span) {
    uint64_t b_hi = want.b_min + static_cast<uint64_t>(
                                     span * static_cast<double>(want.b_max -
                                                                want.b_min));
    double max_err = 0.0;
    for (uint64_t b = want.b_min; b <= b_hi;
         b += std::max<uint64_t>((want.b_max - want.b_min) / 40, 1)) {
      double ref = want.FullScanFetches(static_cast<double>(b));
      if (!(ref > 0.0)) continue;
      max_err = std::max(
          max_err,
          std::abs(got.FullScanFetches(static_cast<double>(b)) - ref) / ref);
    }
    return max_err;
  };

  auto live_exact = exact_engine->BuildStats();
  ASSERT_TRUE(live_exact.ok());
  EXPECT_LE(max_rel_err(*live_exact, *batch, 1.0), 0.032)
      << "exact windowed curve drifted from batch";

  // The sampled comparison stops at 80% of the knot span: in the deepest
  // tail (buffers approaching the table size) the reference's own
  // rescale quantization error dominates a shrinking denominator — the
  // windowed curve actually sits *closer* to the exact batch there.
  //
  // The band against the equally-sampled batch is a little wider than the
  // exact-mode one: the live estimator answers fractional-boundary tail
  // queries (TailWeightAt), while the batch reference rescales onto a
  // round-to-nearest staircase, so the two legitimately disagree by up to
  // a bucket fraction between bucket centers. The second assertion pins
  // what actually matters — the interpolated live curve must track the
  // exact truth at least as well as that staircase reference does.
  auto live_sampled = sampled_engine->BuildStats();
  ASSERT_TRUE(live_sampled.ok());
  EXPECT_LE(max_rel_err(*live_sampled, *batch_sampled, 0.8), 0.06)
      << "sampled windowed curve drifted from the equally-sampled batch";
  EXPECT_LE(max_rel_err(*live_sampled, *batch, 0.8),
            max_rel_err(*batch_sampled, *batch, 0.8) + 0.005)
      << "interpolated live curve lost accuracy against the exact truth";

  // The engine may republish a few times while the early, noisier window
  // settles (self-correcting the bootstrap entry); what matters is that
  // the entry it converges on is as good as the live curve.
  EXPECT_GE(sampled_engine->publishes(), 1u);
  auto published = sampled_catalog.Get("ix");
  ASSERT_TRUE(published.ok());
  EXPECT_LE(max_rel_err(*published, *batch_sampled, 0.8), 0.06)
      << "published entry did not converge";
}

// ---------------------------------------------------------------------------
// Publication behavior.

TEST(OnlineLruFitTest, BootstrapPublishesIntoEmptyCatalog) {
  std::vector<PageId> trace = MakeZipfTrace(8000, 200, 0.7, 3);
  StatsCatalog catalog;
  OnlineLruFitOptions options;
  options.table_pages = 200;
  options.window_refs = 8000;
  options.refresh_interval = 4000;
  OnlineLruFit engine("ix_boot", options, &catalog);
  ASSERT_TRUE(engine.Ingest(trace).ok());

  // The very first refresh published (Est-IO would otherwise run degraded
  // until drift — against nothing — ever triggered).
  EXPECT_EQ(engine.publishes(), 1u);
  auto snapshot = catalog.snapshot();
  ASSERT_TRUE(snapshot->Resolve("ix_boot").valid());
  auto stats = snapshot->Get("ix_boot");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->online_generation, 1u);
  EXPECT_EQ(stats->window_refs, 8000u);
  EXPECT_EQ(stats->drift_error, 0.0);  // Nothing to drift from.
}

TEST(OnlineLruFitTest, PhaseShiftTriggersDriftRepublish) {
  // Phase 1: hard Zipf skew (theta 0.9). Phase 2: near-uniform references
  // over the same pages — the FPF *shape* changes, not just the hot set.
  const uint64_t kPages = 500;
  std::vector<PageId> phase1 = MakeZipfTrace(40000, kPages, 0.9, 17);
  std::vector<PageId> phase2 = MakeZipfTrace(40000, kPages, 0.1, 18);

  StatsCatalog catalog;
  OnlineLruFitOptions options;
  options.table_pages = kPages;
  options.window_refs = 10000;
  options.refresh_interval = 2000;
  options.drift.band = 0.05;
  options.drift.patience = 3;
  OnlineLruFit engine("ix_shift", options, &catalog);

  ASSERT_TRUE(engine.Ingest(phase1).ok());
  uint64_t publishes_after_phase1 = engine.publishes();
  EXPECT_GE(publishes_after_phase1, 1u);
  uint64_t generation_after_phase1 = catalog.snapshot()->generation();

  ASSERT_TRUE(engine.Ingest(phase2).ok());
  EXPECT_GT(engine.publishes(), publishes_after_phase1)
      << "phase shift never triggered a republish";
  EXPECT_GT(catalog.snapshot()->generation(), generation_after_phase1);

  auto stats = catalog.snapshot()->Get("ix_shift");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->online_generation, 2u);
  // The republished entry records the drift that triggered it.
  EXPECT_GT(stats->drift_error, options.drift.band);
  // And the refreshed curve is back in band against the live window.
  EXPECT_LE(engine.detector().streak(), options.drift.patience - 1);
}

// ---------------------------------------------------------------------------
// Fault points.

TEST(OnlineLruFitTest, RefreshEmitFaultSurfacesAndEngineRecovers) {
  FaultInjector::Global().DisarmAll();
  std::vector<PageId> trace = MakeZipfTrace(12000, 200, 0.7, 5);
  StatsCatalog catalog;
  OnlineLruFitOptions options;
  options.table_pages = 200;
  options.window_refs = 8000;
  options.refresh_interval = 4000;
  OnlineLruFit engine("ix_fault", options, &catalog);

  FaultSpec spec;
  spec.max_fires = 1;
  FaultInjector::Global().Arm("online.refresh.emit", spec);
  Status ingest = engine.Ingest(trace);
  FaultInjector::Global().DisarmAll();
  EXPECT_EQ(ingest.code(), StatusCode::kIoError);
  EXPECT_EQ(engine.publishes(), 0u);

  // The references before the failed refresh were already absorbed by the
  // kernel; feeding the rest retries the refresh and bootstraps normally.
  ASSERT_TRUE(engine.Ingest(trace).ok());
  EXPECT_GE(engine.publishes(), 1u);
  EXPECT_TRUE(catalog.snapshot()->Resolve("ix_fault").valid());
}

TEST(OnlineLruFitTest, PublishFaultLeavesPreviousSnapshotAndRetries) {
  FaultInjector::Global().DisarmAll();
  std::vector<PageId> trace = MakeZipfTrace(12000, 200, 0.7, 7);
  StatsCatalog catalog;
  OnlineLruFitOptions options;
  options.table_pages = 200;
  options.window_refs = 8000;
  options.refresh_interval = 4000;
  OnlineLruFit engine("ix_pub", options, &catalog);

  FaultSpec spec;
  spec.max_fires = 1;
  FaultInjector::Global().Arm("online.publish", spec);
  Status ingest = engine.Ingest(trace);
  FaultInjector::Global().DisarmAll();
  EXPECT_FALSE(ingest.ok());
  // Failed bootstrap publish: the serving snapshot is untouched.
  EXPECT_EQ(engine.publishes(), 0u);
  EXPECT_FALSE(catalog.snapshot()->Resolve("ix_pub").valid());
  EXPECT_EQ(catalog.snapshot()->generation(), 0u);

  ASSERT_TRUE(engine.Ingest(trace).ok());
  EXPECT_GE(engine.publishes(), 1u);
  EXPECT_TRUE(catalog.snapshot()->Resolve("ix_pub").valid());
}

// ---------------------------------------------------------------------------
// Provenance round-trips.

TEST(OnlineLruFitTest, OnlineProvenanceRoundTripsThroughAllFormats) {
  std::vector<PageId> trace = MakeZipfTrace(8000, 200, 0.7, 9);
  StatsCatalog catalog;
  OnlineLruFitOptions options;
  options.table_pages = 200;
  options.window_refs = 6000;
  options.refresh_interval = 4000;
  OnlineLruFit engine("ix_prov", options, &catalog);
  ASSERT_TRUE(engine.Ingest(trace).ok());
  auto original = catalog.Get("ix_prov");
  ASSERT_TRUE(original.ok());
  ASSERT_EQ(original->online_generation, 1u);
  ASSERT_EQ(original->window_refs, 6000u);

  // v2 text round-trip.
  StatsCatalog from_v2;
  ASSERT_TRUE(from_v2.LoadFromString(catalog.SaveToString()).ok());
  auto v2 = from_v2.Get("ix_prov");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->online_generation, original->online_generation);
  EXPECT_EQ(v2->window_refs, original->window_refs);
  EXPECT_EQ(v2->drift_error, original->drift_error);

  // v3 binary round-trip.
  StatsCatalog from_v3;
  ASSERT_TRUE(from_v3.LoadFromString(catalog.SaveToStringV3()).ok());
  auto v3 = from_v3.Get("ix_prov");
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3->online_generation, original->online_generation);
  EXPECT_EQ(v3->window_refs, original->window_refs);
  EXPECT_EQ(v3->drift_error, original->drift_error);

  // Snapshot materialization (the RCU read side).
  auto snap = catalog.snapshot()->Get("ix_prov");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->online_generation, original->online_generation);
  EXPECT_EQ(snap->window_refs, original->window_refs);
  EXPECT_EQ(snap->drift_error, original->drift_error);

  // Batch entries keep the zero defaults (no fake online provenance).
  auto batch = RunLruFit(trace, 200, 100, "ix_batch");
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->online_generation, 0u);
  EXPECT_EQ(batch->window_refs, 0u);
  EXPECT_EQ(batch->drift_error, 0.0);
}

// ---------------------------------------------------------------------------
// RCU contract under a publish storm (TSan drill).

TEST(OnlineLruFitConcurrencyTest, PublishesDoNotBlockBatchReaders) {
  const uint64_t kPages = 300;
  std::vector<PageId> trace = MakeZipfTrace(60000, kPages, 0.8, 21);

  StatsCatalog catalog;
  OnlineLruFitOptions options;
  options.table_pages = kPages;
  options.window_refs = 4000;
  options.refresh_interval = 1000;
  options.drift.band = 0.0;  // Republish on any measurable drift:
  options.drift.patience = 1;  // a publish storm for the readers below.
  OnlineLruFit engine("ix_rcu", options, &catalog);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<bool> failed{false};
  ScanSpec scan;
  scan.sigma = 0.2;
  scan.sargable_selectivity = 0.8;
  scan.buffer_pages = 32;
  TableShape shape;
  shape.table_pages = kPages;
  shape.table_records = trace.size();

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      uint64_t last_generation = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const CatalogSnapshot> snapshot = catalog.snapshot();
        uint64_t generation = snapshot->generation();
        if (generation < last_generation) {  // RCU: time never runs backward.
          failed.store(true, std::memory_order_release);
          break;
        }
        last_generation = generation;
        CatalogSnapshot::Handle handle = snapshot->Resolve("ix_rcu");
        if (handle.valid()) {
          std::vector<BatchProbe> probes = {BatchProbe{handle, scan, shape}};
          std::vector<CatalogEstimate> results(probes.size());
          if (!EstIo::EstimateBatch(*snapshot, probes, results).ok()) {
            failed.store(true, std::memory_order_release);
            break;
          }
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Status ingest = engine.Ingest(trace);
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  ASSERT_TRUE(ingest.ok());
  EXPECT_FALSE(failed.load());
  EXPECT_GE(engine.publishes(), 2u) << "storm never materialized";
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace epfis
