// Regression + property tests for IndexStats::FullScanFetches outside the
// fitted knot range. The FPF segments carry no information beyond the
// simulated buffer sizes, so out-of-range queries must clamp to the
// nearest knot — extrapolating a steep end segment can leave [A, N]
// entirely (negative beyond the last knot) and, through the value clamp,
// distort the curve's shape. Properties checked on random monotone
// curves: PF_B is finite, stays within [A, N], is non-increasing in B
// across a sweep that crosses both knot boundaries, and is exactly
// constant outside them.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "epfis/index_stats.h"
#include "util/piecewise.h"
#include "util/random.h"

namespace epfis {
namespace {

IndexStats StatsWithCurve(std::vector<Knot> knots, uint64_t pages_accessed,
                          uint64_t table_records) {
  IndexStats stats;
  stats.index_name = "fpf_clamp_test";
  stats.table_pages = static_cast<uint64_t>(knots.back().x);
  stats.table_records = table_records;
  stats.pages_accessed = pages_accessed;
  stats.b_min = static_cast<uint64_t>(knots.front().x);
  stats.b_max = static_cast<uint64_t>(knots.back().x);
  stats.f_min = static_cast<uint64_t>(knots.front().y);
  stats.fpf = PiecewiseLinear::FromKnots(std::move(knots)).value();
  return stats;
}

TEST(FpfClampPropertyTest, QueriesOutsideKnotRangeClampToNearestKnot) {
  // Steep end segments: extrapolating left of B=10 would climb past
  // 30000 (and past N), extrapolating right of B=20 would go negative.
  IndexStats stats =
      StatsWithCurve({{10, 30000}, {20, 100}}, /*pages_accessed=*/50,
                     /*table_records=*/40000);

  double at_min = stats.FullScanFetches(10);
  double at_max = stats.FullScanFetches(20);
  EXPECT_DOUBLE_EQ(at_min, 30000.0);
  EXPECT_DOUBLE_EQ(at_max, 100.0);

  // Below the knot range: the old linear extrapolation gave 44950 at B=5;
  // the clamp must pin the boundary value instead.
  EXPECT_DOUBLE_EQ(stats.FullScanFetches(5), at_min);
  EXPECT_DOUBLE_EQ(stats.FullScanFetches(0), at_min);
  // Above: extrapolation gave -29800 at B=30 (then the value clamp pulled
  // it up to A=50, below every real curve value); now it is F(b_max).
  EXPECT_DOUBLE_EQ(stats.FullScanFetches(30), at_max);
  EXPECT_DOUBLE_EQ(stats.FullScanFetches(1e9), at_max);
}

TEST(FpfClampPropertyTest, MissingCurveStillReturnsZero) {
  IndexStats stats;
  stats.pages_accessed = 100;
  stats.table_records = 1000;
  EXPECT_DOUBLE_EQ(stats.FullScanFetches(50), 0.0);
}

TEST(FpfClampPropertyTest, RandomMonotoneCurvesStayBoundedAndMonotone) {
  Rng rng(20260805);
  for (int iter = 0; iter < 200; ++iter) {
    // Random non-increasing FPF curve: 2-8 knots over a random buffer
    // range, values descending from near N toward A.
    const uint64_t table_records = 1000 + rng.NextBounded(100'000);
    const uint64_t pages_accessed = 1 + rng.NextBounded(table_records / 4);
    const size_t num_knots = 2 + rng.NextBounded(7);

    std::vector<Knot> knots;
    double x = 1.0 + static_cast<double>(rng.NextBounded(100));
    double y = static_cast<double>(pages_accessed) +
               rng.NextDouble() * static_cast<double>(table_records -
                                                      pages_accessed);
    for (size_t k = 0; k < num_knots; ++k) {
      knots.push_back({x, y});
      x += 1.0 + static_cast<double>(rng.NextBounded(500));
      y -= rng.NextDouble() * (y - static_cast<double>(pages_accessed)) *
           0.9;
    }
    IndexStats stats = StatsWithCurve(knots, pages_accessed, table_records);

    // Sweep well past both ends of the knot range.
    const double b_min = knots.front().x;
    const double b_max = knots.back().x;
    const double lo = static_cast<double>(pages_accessed);
    const double hi = static_cast<double>(table_records);
    double previous = hi + 1.0;
    for (int step = 0; step <= 100; ++step) {
      double b = (b_max + 10.0) * static_cast<double>(step) / 100.0;
      double pf = stats.FullScanFetches(b);
      ASSERT_TRUE(std::isfinite(pf)) << "b=" << b;
      ASSERT_GE(pf, lo) << "b=" << b;
      ASSERT_LE(pf, hi) << "b=" << b;
      ASSERT_LE(pf, previous + 1e-9)
          << "PF_B increased at b=" << b << " (iter " << iter << ")";
      previous = pf;
    }

    // Constant outside the knot range, continuous at the boundaries.
    EXPECT_DOUBLE_EQ(stats.FullScanFetches(b_min - 5.0),
                     stats.FullScanFetches(b_min));
    EXPECT_DOUBLE_EQ(stats.FullScanFetches(0.0),
                     stats.FullScanFetches(b_min));
    EXPECT_DOUBLE_EQ(stats.FullScanFetches(b_max + 5.0),
                     stats.FullScanFetches(b_max));
    EXPECT_DOUBLE_EQ(stats.FullScanFetches(b_max * 100.0),
                     stats.FullScanFetches(b_max));
  }
}

}  // namespace
}  // namespace epfis
