#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/stats_catalog.h"
#include "epfis/est_io.h"
#include "epfis/lru_fit.h"
#include "obs/metrics.h"
#include "util/fault.h"
#include "util/formulas.h"

namespace epfis {
namespace {

class EstIoDegradedTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    // A real catalog entry from a real LRU-Fit run.
    std::vector<PageId> trace(8000);
    for (size_t i = 0; i < trace.size(); ++i) {
      trace[i] = static_cast<PageId>((i * 17) % 150);
    }
    auto stats = RunLruFit(trace, 150, 50, "ix_good");
    ASSERT_TRUE(stats.ok());
    catalog_.Put(std::move(*stats));

    scan_.sigma = 0.1;
    scan_.sargable_selectivity = 0.5;
    scan_.buffer_pages = 64;
    shape_.table_pages = 150;
    shape_.table_records = 8000;
  }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  uint64_t DegradedCount() {
    return MetricsRegistry::Global()
        .Snapshot()
        .counters["est_io.degraded"];
  }

  StatsCatalog catalog_;
  ScanSpec scan_;
  TableShape shape_;
};

TEST_F(EstIoDegradedTest, TrustedStatsUseTheFullModel) {
  auto est = EstIo::EstimateFromCatalog(catalog_, "ix_good", scan_, shape_);
  ASSERT_TRUE(est.ok()) << est.status().message();
  EXPECT_EQ(est->source, EstimateSource::kLruFitCurve);
  EXPECT_TRUE(est->stats_status.ok());
  // Identical to the direct validated estimate.
  auto direct = EstIo::Estimate(*catalog_.Get("ix_good"), scan_);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(est->fetches, *direct);
}

TEST_F(EstIoDegradedTest, MissingStatsFallBackToYao) {
  uint64_t before = DegradedCount();
  auto est = EstIo::EstimateFromCatalog(catalog_, "ix_missing", scan_,
                                        shape_);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->source, EstimateSource::kFormulaFallback);
  EXPECT_EQ(est->stats_status.code(), StatusCode::kNotFound);
  double k = scan_.sigma * scan_.sargable_selectivity *
             static_cast<double>(shape_.table_records);
  EXPECT_DOUBLE_EQ(est->fetches,
                   YaoPages(static_cast<double>(shape_.table_records),
                            static_cast<double>(shape_.table_pages), k));
  EXPECT_EQ(DegradedCount(), before + 1);
}

TEST_F(EstIoDegradedTest, QuarantinedStatsFallBackWithCorruption) {
  // Quarantine the entry by recovering a tampered serialization.
  std::string text = catalog_.SaveToString();
  size_t at = text.find("table_pages=");
  ASSERT_NE(at, std::string::npos);
  text[at + 12] ^= 0x01;
  StatsCatalog recovered;
  ASSERT_TRUE(recovered.RecoverFromString(text).ok());
  ASSERT_TRUE(recovered.IsQuarantined("ix_good"));

  auto est = EstIo::EstimateFromCatalog(recovered, "ix_good", scan_, shape_);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->source, EstimateSource::kFormulaFallback);
  EXPECT_EQ(est->stats_status.code(), StatusCode::kCorruption);
  EXPECT_GT(est->fetches, 0.0);
}

TEST_F(EstIoDegradedTest, DegradedEstimateRespectsQualifyingBound) {
  auto est = EstIo::EstimateFromCatalog(catalog_, "ix_missing", scan_,
                                        shape_);
  ASSERT_TRUE(est.ok());
  double k = scan_.sigma * scan_.sargable_selectivity *
             static_cast<double>(shape_.table_records);
  EXPECT_GE(est->fetches, 0.0);
  EXPECT_LE(est->fetches, k);
}

TEST_F(EstIoDegradedTest, UnknownShapeFallsBackToRecordBound) {
  TableShape unknown;  // Neither pages nor records known.
  auto est = EstIo::EstimateFromCatalog(catalog_, "ix_missing", scan_,
                                        unknown);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->fetches, 0.0);  // k = 0 with no record count.

  TableShape records_only;
  records_only.table_records = 1000;
  auto est2 = EstIo::EstimateFromCatalog(catalog_, "ix_missing", scan_,
                                         records_only);
  ASSERT_TRUE(est2.ok());
  double k = scan_.sigma * scan_.sargable_selectivity * 1000.0;
  EXPECT_DOUBLE_EQ(est2->fetches, k);  // Records is the only bound.
}

TEST_F(EstIoDegradedTest, InjectedLookupFaultTriggersDegradedMode) {
  FaultSpec spec;
  spec.code = StatusCode::kCorruption;
  spec.max_fires = 1;
  FaultInjector::Global().Arm("est_io.lookup", spec);
  auto est = EstIo::EstimateFromCatalog(catalog_, "ix_good", scan_, shape_);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->source, EstimateSource::kFormulaFallback);
  // Clean retry goes back to the full model.
  auto est2 = EstIo::EstimateFromCatalog(catalog_, "ix_good", scan_, shape_);
  ASSERT_TRUE(est2.ok());
  EXPECT_EQ(est2->source, EstimateSource::kLruFitCurve);
}

TEST_F(EstIoDegradedTest, NonDegradableErrorsPropagate) {
  FaultSpec spec;
  spec.code = StatusCode::kInternal;
  spec.max_fires = 1;
  FaultInjector::Global().Arm("est_io.lookup", spec);
  auto est = EstIo::EstimateFromCatalog(catalog_, "ix_good", scan_, shape_);
  EXPECT_EQ(est.status().code(), StatusCode::kInternal);
}

TEST_F(EstIoDegradedTest, ScanValidationStillApplies) {
  ScanSpec bad = scan_;
  bad.sigma = 1.5;
  EXPECT_EQ(EstIo::EstimateFromCatalog(catalog_, "ix_missing", bad, shape_)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  bad = scan_;
  bad.buffer_pages = 0;
  EXPECT_EQ(EstIo::EstimateFromCatalog(catalog_, "ix_good", bad, shape_)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace epfis
