#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "epfis/trace_io.h"
#include "epfis/trace_source.h"
#include "util/fault.h"

namespace epfis {
namespace {

class TraceFaultTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    // Per-test directory: parallel ctest processes must not share scratch.
    dir_ = testing::TempDir() + "/epfis_trace_fault_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    trace_.resize(1000);
    for (size_t i = 0; i < trace_.size(); ++i) {
      trace_[i] = static_cast<PageId>(i % 37);
    }
    path_ = dir_ + "/trace.bin";
    ASSERT_TRUE(SavePageTrace(trace_, path_).ok());
  }
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::vector<PageId> ReadAll(PageTraceReader& reader) {
    std::vector<PageId> out;
    PageId buf[64];
    for (;;) {
      auto n = reader.Read(buf, 64);
      EXPECT_TRUE(n.ok()) << n.status().message();
      if (!n.ok() || *n == 0) break;
      out.insert(out.end(), buf, buf + *n);
    }
    return out;
  }

  std::string dir_;
  std::string path_;
  std::vector<PageId> trace_;
};

// The short-read satellite: a schedule that clamps every read to a few
// bytes — even splitting entries across reads — must be absorbed by the
// continuation loop with no data corruption.
TEST_F(TraceFaultTest, ShortReadsAreTransparentlyContinued) {
  FaultSpec spec;
  spec.kind = FaultKind::kShortRead;
  spec.short_io_bytes = 3;  // Not a divisor of sizeof(PageId): splits entries.
  FaultInjector::Global().Arm("trace.read.body", spec);

  auto reader = PageTraceReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  EXPECT_EQ(ReadAll(*reader), trace_);
  EXPECT_GT(FaultInjector::Global().counters("trace.read.body").fires, 0u);
}

TEST_F(TraceFaultTest, ShortReadsOnHeaderToo) {
  FaultSpec spec;
  spec.kind = FaultKind::kShortRead;
  spec.short_io_bytes = 1;
  FaultInjector::Global().Arm("trace.read.header", spec);
  auto reader = PageTraceReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  EXPECT_EQ(reader->count(), trace_.size());
}

// The EINTR satellite: a finite burst of interrupted reads is retried;
// an unbounded storm exhausts the retry budget and fails cleanly instead
// of hanging.
TEST_F(TraceFaultTest, FiniteEintrBurstIsRetried) {
  FaultSpec spec;
  spec.kind = FaultKind::kEintr;
  spec.max_fires = 7;
  FaultInjector::Global().Arm("trace.read.body", spec);

  auto reader = PageTraceReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(ReadAll(*reader), trace_);
  EXPECT_EQ(FaultInjector::Global().counters("trace.read.body").fires, 7u);
}

TEST_F(TraceFaultTest, UnboundedEintrStormFailsWithIoError) {
  FaultSpec spec;
  spec.kind = FaultKind::kEintr;  // Fires on every call, forever.
  FaultInjector::Global().Arm("trace.read.body", spec);

  auto reader = PageTraceReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  PageId buf[64];
  Result<size_t> n = reader->Read(buf, 64);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kIoError);
  EXPECT_NE(n.status().message().find("interrupted"), std::string::npos);
  // The retry budget bounds the spin: ~100 consults, not millions.
  EXPECT_LE(FaultInjector::Global().counters("trace.read.body").fires, 200u);
}

TEST_F(TraceFaultTest, OpenAndSaveFaultPointsSurface) {
  FaultSpec one_shot;
  one_shot.max_fires = 1;

  FaultInjector::Global().Arm("trace.open", one_shot);
  EXPECT_EQ(PageTraceReader::Open(path_).status().code(),
            StatusCode::kIoError);
  EXPECT_TRUE(PageTraceReader::Open(path_).ok());  // Clean retry.

  FaultInjector::Global().Arm("trace.save.open", one_shot);
  EXPECT_EQ(SavePageTrace(trace_, dir_ + "/t2.bin").code(),
            StatusCode::kIoError);
  FaultInjector::Global().Arm("trace.save.write", one_shot);
  EXPECT_EQ(SavePageTrace(trace_, dir_ + "/t3.bin").code(),
            StatusCode::kIoError);
  EXPECT_TRUE(SavePageTrace(trace_, dir_ + "/t4.bin").ok());
}

// The degradation satellite: an mmap failure (injected at the same exit a
// real one takes) silently falls back to the streaming reader.
TEST_F(TraceFaultTest, MmapFailureDegradesToStreaming) {
  if (!MmapTraceSource::Supported()) GTEST_SKIP() << "no mmap here";
  FaultSpec one_shot;
  one_shot.max_fires = 1;
  FaultInjector::Global().Arm("trace.mmap.map", one_shot);

  auto source = OpenTraceSource(path_);
  ASSERT_TRUE(source.ok()) << source.status().message();
  EXPECT_EQ(FaultInjector::Global().counters("trace.mmap.map").fires, 1u);
  // The fallback source streams the identical trace.
  std::vector<PageId> out;
  PageId buf[128];
  for (;;) {
    auto n = (*source)->Next(buf, 128);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    out.insert(out.end(), buf, buf + *n);
  }
  EXPECT_EQ(out, trace_);
}

TEST_F(TraceFaultTest, CorruptionStillPropagatesThroughOpenTraceSource) {
  // A Corruption-coded injected fault at the mmap point must NOT trigger
  // the fallback: corrupt files are corrupt through any access path.
  if (!MmapTraceSource::Supported()) GTEST_SKIP() << "no mmap here";
  FaultSpec spec;
  spec.code = StatusCode::kCorruption;
  spec.max_fires = 1;
  FaultInjector::Global().Arm("trace.mmap.map", spec);
  EXPECT_EQ(OpenTraceSource(path_).status().code(), StatusCode::kCorruption);
}

// The configurable-budget satellite: the EINTR tolerance is a per-open
// knob, and the exhaustion error accounts for the retries it consumed.
TEST_F(TraceFaultTest, EintrRetryBudgetIsConfigurablePerOpen) {
  FaultSpec spec;
  spec.kind = FaultKind::kEintr;  // Every call, forever.
  FaultInjector::Global().Arm("trace.read.body", spec);

  auto reader = PageTraceReader::Open(path_, /*eintr_retry_budget=*/5);
  ASSERT_TRUE(reader.ok());
  PageId buf[64];
  Result<size_t> n = reader->Read(buf, 64);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kIoError);
  EXPECT_NE(n.status().message().find("5 of 5 retries consumed"),
            std::string::npos)
      << n.status().message();
  EXPECT_LE(FaultInjector::Global().counters("trace.read.body").fires, 10u);

  // A burst under the custom budget is absorbed.
  FaultSpec burst;
  burst.kind = FaultKind::kEintr;
  burst.max_fires = 3;
  FaultInjector::Global().Arm("trace.read.body", burst);
  auto tolerant = PageTraceReader::Open(path_, /*eintr_retry_budget=*/5);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_EQ(ReadAll(*tolerant), trace_);
}

TEST_F(TraceFaultTest, TraceOpenOptionsForwardsEintrBudget) {
  FaultSpec spec;
  spec.kind = FaultKind::kEintr;
  FaultInjector::Global().Arm("trace.read.body", spec);

  TraceOpenOptions options;
  options.eintr_retry_budget = 4;
  auto source = FileTraceSource::Open(path_, options);
  ASSERT_TRUE(source.ok());
  PageId buf[64];
  Result<size_t> n = source->Next(buf, 64);
  ASSERT_FALSE(n.ok());
  EXPECT_NE(n.status().message().find("4 of 4 retries consumed"),
            std::string::npos)
      << n.status().message();
}

// Transient open failures retry with backoff when asked; a single-attempt
// open (the default) still fails on the first fault.
TEST_F(TraceFaultTest, OpenRetriesTransientFailuresWhenConfigured) {
  FaultSpec one_shot;
  one_shot.max_fires = 1;
  FaultInjector::Global().Arm("trace.open", one_shot);
  // mmap must also fail so OpenTraceSource reaches the streaming opener.
  FaultInjector::Global().Arm("trace.mmap.map", FaultSpec{});

  TraceOpenOptions options;
  options.open_retry_attempts = 3;
  options.open_retry_initial = std::chrono::microseconds(50);
  auto source = OpenTraceSource(path_, options);
  ASSERT_TRUE(source.ok()) << source.status().message();
  EXPECT_EQ(FaultInjector::Global().counters("trace.open").fires, 1u);
}

TEST_F(TraceFaultTest, CancelledTokenStopsEveryTraceSourceRead) {
  CancellationToken token = CancellationToken::Create();
  TraceOpenOptions options;
  options.cancel = token;

  auto file_source = FileTraceSource::Open(path_, options);
  ASSERT_TRUE(file_source.ok());
  auto any_source = OpenTraceSource(path_, options);
  ASSERT_TRUE(any_source.ok());

  PageId buf[64];
  auto before = file_source->Next(buf, 64);
  ASSERT_TRUE(before.ok());  // Token not fired yet: reads flow.
  token.Cancel();
  Result<size_t> after = file_source->Next(buf, 64);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kCancelled);
  Result<size_t> mapped = (*any_source)->Next(buf, 64);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kCancelled);
}

TEST_F(TraceFaultTest, LoadPageTraceSharesHardenedPath) {
  FaultSpec spec;
  spec.kind = FaultKind::kShortRead;
  spec.short_io_bytes = 5;
  FaultInjector::Global().Arm("trace.read.body", spec);
  auto loaded = LoadPageTrace(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, trace_);
}

}  // namespace
}  // namespace epfis
