#include "epfis/lru_fit.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/stats_catalog.h"
#include "epfis/trace_source.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace epfis {
namespace {

std::vector<PageId> RandomTrace(size_t refs, uint32_t pages, uint64_t seed) {
  Rng rng(seed);
  std::vector<PageId> trace;
  trace.reserve(refs);
  for (size_t i = 0; i < refs; ++i) {
    trace.push_back(static_cast<PageId>(rng.NextBounded(pages)));
  }
  return trace;
}

LruFitJob MakeJob(const std::string& name, uint64_t seed) {
  LruFitJob job;
  job.trace = std::make_unique<VectorTraceSource>(RandomTrace(8'000, 200, seed));
  job.table_pages = 200;
  job.distinct_keys = 40;
  job.index_name = name;
  return job;
}

TEST(RunLruFitBatchTest, CollectsManyIndexesIntoCatalog) {
  ThreadPool pool(4);
  StatsCatalog catalog;
  std::vector<LruFitJob> jobs;
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) {
    names.push_back("idx_" + std::to_string(i));
    jobs.push_back(MakeJob(names.back(), 100 + i));
  }
  LruFitBatchResult result = RunLruFitBatch(std::move(jobs), pool, &catalog);
  ASSERT_EQ(result.statuses.size(), 12u);
  EXPECT_TRUE(result.all_ok());
  EXPECT_EQ(result.num_ok, 12u);
  EXPECT_EQ(catalog.size(), 12u);
  for (const std::string& name : names) {
    auto stats = catalog.Get(name);
    ASSERT_TRUE(stats.ok()) << name;
    EXPECT_EQ(stats->index_name, name);
    EXPECT_EQ(stats->table_records, 8'000u);
    EXPECT_TRUE(stats->fpf.has_value());
  }
}

TEST(RunLruFitBatchTest, BatchMatchesSerialCollection) {
  ThreadPool pool(3);
  StatsCatalog catalog;
  std::vector<LruFitJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(MakeJob("batch_" + std::to_string(i), 7 + i));
  }
  RunLruFitBatch(std::move(jobs), pool, &catalog);
  for (int i = 0; i < 4; ++i) {
    auto serial =
        RunLruFit(RandomTrace(8'000, 200, 7 + i), 200, 40,
                  "batch_" + std::to_string(i));
    ASSERT_TRUE(serial.ok());
    auto batched = catalog.Get("batch_" + std::to_string(i));
    ASSERT_TRUE(batched.ok());
    EXPECT_EQ(batched->f_min, serial->f_min);
    EXPECT_DOUBLE_EQ(batched->clustering, serial->clustering);
    for (double b : {12.0, 60.0, 200.0}) {
      EXPECT_DOUBLE_EQ(batched->FullScanFetches(b),
                       serial->FullScanFetches(b));
    }
  }
}

TEST(RunLruFitBatchTest, AdaptiveSamplingJobsRouteToSerialKernel) {
  // Batch jobs may legitimately request fixed-size adaptive sampling even
  // though the combination pool + sample_max_pages is an InvalidArgument
  // for direct RunLruFit calls: the batch resets `pool` per job, so each
  // job runs the adaptive pass on the serial kernel, bit-identical to a
  // serial RunLruFit with the same options.
  ThreadPool pool(3);
  StatsCatalog catalog;
  LruFitOptions adaptive;
  adaptive.sample_max_pages = 64;
  std::vector<LruFitJob> jobs;
  for (int i = 0; i < 3; ++i) {
    LruFitJob job = MakeJob("adaptive_" + std::to_string(i), 31 + i);
    job.options = adaptive;
    jobs.push_back(std::move(job));
  }
  LruFitBatchResult result = RunLruFitBatch(std::move(jobs), pool, &catalog);
  EXPECT_TRUE(result.all_ok());
  for (int i = 0; i < 3; ++i) {
    auto serial = RunLruFit(RandomTrace(8'000, 200, 31 + i), 200, 40,
                            "adaptive_" + std::to_string(i), adaptive);
    ASSERT_TRUE(serial.ok());
    auto batched = catalog.Get("adaptive_" + std::to_string(i));
    ASSERT_TRUE(batched.ok());
    EXPECT_EQ(batched->f_min, serial->f_min);
    EXPECT_EQ(batched->sampled_refs, serial->sampled_refs);
    EXPECT_DOUBLE_EQ(batched->sample_rate, serial->sample_rate);
    for (double b : {12.0, 60.0, 200.0}) {
      EXPECT_DOUBLE_EQ(batched->FullScanFetches(b),
                       serial->FullScanFetches(b));
    }
  }
}

TEST(RunLruFitBatchTest, FailedJobsReportedWithoutPoisoningCatalog) {
  ThreadPool pool(2);
  StatsCatalog catalog;
  std::vector<LruFitJob> jobs;
  jobs.push_back(MakeJob("good", 1));
  // Empty trace: fails inside RunLruFit.
  LruFitJob empty;
  empty.trace = std::make_unique<VectorTraceSource>(std::vector<PageId>{});
  empty.table_pages = 10;
  empty.index_name = "empty";
  jobs.push_back(std::move(empty));
  // Missing trace: rejected up front.
  LruFitJob missing;
  missing.index_name = "missing";
  jobs.push_back(std::move(missing));

  LruFitBatchResult result = RunLruFitBatch(std::move(jobs), pool, &catalog);
  ASSERT_EQ(result.statuses.size(), 3u);
  EXPECT_TRUE(result.statuses[0].ok());
  EXPECT_FALSE(result.statuses[1].ok());
  EXPECT_FALSE(result.statuses[2].ok());
  EXPECT_EQ(result.num_ok, 1u);
  EXPECT_FALSE(result.all_ok());
  EXPECT_TRUE(catalog.Contains("good"));
  EXPECT_FALSE(catalog.Contains("empty"));
  EXPECT_FALSE(catalog.Contains("missing"));
}

TEST(StatsCatalogTest, ConcurrentPutGetIsSafe) {
  // Hammer the catalog from several threads; run under TSan in CI.
  StatsCatalog catalog;
  auto writer = [&catalog](int id) {
    for (int i = 0; i < 50; ++i) {
      IndexStats stats;
      stats.index_name = "idx_" + std::to_string(id);
      stats.table_pages = static_cast<uint64_t>(i);
      catalog.Put(stats);
      (void)catalog.Get("idx_" + std::to_string((id + 1) % 4));
      (void)catalog.size();
      (void)catalog.IndexNames();
    }
  };
  std::vector<std::thread> threads;
  for (int id = 0; id < 4; ++id) threads.emplace_back(writer, id);
  for (auto& t : threads) t.join();
  EXPECT_EQ(catalog.size(), 4u);
}

}  // namespace
}  // namespace epfis
