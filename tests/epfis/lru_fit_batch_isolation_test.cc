#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/stats_catalog.h"
#include "epfis/lru_fit.h"
#include "epfis/trace_source.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace epfis {
namespace {

// A trace source that yields part of its trace and then fails with
// Corruption — a deterministic stand-in for a torn trace file, pinned to
// one specific job regardless of worker scheduling.
class CorruptTraceSource final : public TraceSource {
 public:
  CorruptTraceSource(std::vector<PageId> trace, size_t fail_after)
      : trace_(std::move(trace)), fail_after_(fail_after) {}

  Result<size_t> Next(PageId* buffer, size_t capacity) override {
    if (pos_ >= fail_after_) {
      return Status::Corruption("trace file: truncated body");
    }
    size_t n = std::min(capacity, fail_after_ - pos_);
    std::memcpy(buffer, trace_.data() + pos_, n * sizeof(PageId));
    pos_ += n;
    return n;
  }
  Status Reset() override {
    pos_ = 0;
    return Status::Ok();
  }
  std::optional<uint64_t> size_hint() const override {
    return static_cast<uint64_t>(trace_.size());
  }

 private:
  std::vector<PageId> trace_;
  size_t fail_after_;
  size_t pos_ = 0;
};

// A source whose Next throws, exercising the exception containment.
class ThrowingTraceSource final : public TraceSource {
 public:
  Result<size_t> Next(PageId*, size_t) override {
    throw std::runtime_error("misbehaving trace source");
  }
  Status Reset() override { return Status::Ok(); }
};

std::vector<PageId> MakeTrace(uint64_t seed, size_t n) {
  std::vector<PageId> trace(n);
  uint64_t x = seed * 2654435761u + 1;
  for (size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    trace[i] = static_cast<PageId>(x % 200);
  }
  return trace;
}

class LruFitBatchIsolationTest : public testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().DisarmAll(); }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

// The job-k isolation satellite: one corrupt job fails with Corruption at
// exactly its index; every other job's published statistics are
// bit-identical to a serial RunLruFit of the same trace — across several
// pool widths.
TEST_F(LruFitBatchIsolationTest, CorruptJobIsIsolatedAcrossPoolWidths) {
  constexpr size_t kJobs = 5;
  constexpr size_t kBadJob = 2;
  constexpr uint64_t kTablePages = 200;

  // Serial reference results for the good jobs.
  std::vector<IndexStats> expected(kJobs);
  for (size_t j = 0; j < kJobs; ++j) {
    if (j == kBadJob) continue;
    auto stats = RunLruFit(MakeTrace(j, 5000), kTablePages, 100,
                           "ix_" + std::to_string(j));
    ASSERT_TRUE(stats.ok());
    expected[j] = std::move(*stats);
  }

  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    std::vector<LruFitJob> jobs;
    for (size_t j = 0; j < kJobs; ++j) {
      LruFitJob job;
      if (j == kBadJob) {
        job.trace = std::make_unique<CorruptTraceSource>(MakeTrace(j, 5000),
                                                         2500);
      } else {
        job.trace =
            std::make_unique<VectorTraceSource>(MakeTrace(j, 5000));
      }
      job.table_pages = kTablePages;
      job.distinct_keys = 100;
      job.index_name = "ix_" + std::to_string(j);
      jobs.push_back(std::move(job));
    }

    StatsCatalog catalog;
    LruFitBatchResult result = RunLruFitBatch(std::move(jobs), pool,
                                              &catalog);
    ASSERT_EQ(result.statuses.size(), kJobs);
    EXPECT_EQ(result.num_ok, kJobs - 1);
    for (size_t j = 0; j < kJobs; ++j) {
      if (j == kBadJob) {
        EXPECT_EQ(result.statuses[j].code(), StatusCode::kCorruption);
        EXPECT_FALSE(catalog.Contains("ix_" + std::to_string(j)));
        continue;
      }
      EXPECT_TRUE(result.statuses[j].ok());
      auto got = catalog.Get("ix_" + std::to_string(j));
      ASSERT_TRUE(got.ok());
      // Bit-identical to the serial run: every scalar and every knot.
      EXPECT_EQ(got->table_records, expected[j].table_records);
      EXPECT_EQ(got->pages_accessed, expected[j].pages_accessed);
      EXPECT_EQ(got->f_min, expected[j].f_min);
      EXPECT_EQ(got->clustering, expected[j].clustering);
      ASSERT_TRUE(got->fpf.has_value());
      ASSERT_TRUE(expected[j].fpf.has_value());
      ASSERT_EQ(got->fpf->knots().size(), expected[j].fpf->knots().size());
      for (size_t k = 0; k < got->fpf->knots().size(); ++k) {
        EXPECT_EQ(got->fpf->knots()[k].x, expected[j].fpf->knots()[k].x);
        EXPECT_EQ(got->fpf->knots()[k].y, expected[j].fpf->knots()[k].y);
      }
    }
  }
}

TEST_F(LruFitBatchIsolationTest, ThrowingJobBecomesInternalStatus) {
  ThreadPool pool(2);
  std::vector<LruFitJob> jobs;
  for (int j = 0; j < 3; ++j) {
    LruFitJob job;
    if (j == 1) {
      job.trace = std::make_unique<ThrowingTraceSource>();
    } else {
      job.trace = std::make_unique<VectorTraceSource>(MakeTrace(j, 2000));
    }
    job.table_pages = 200;
    job.index_name = "ix_" + std::to_string(j);
    jobs.push_back(std::move(job));
  }
  StatsCatalog catalog;
  LruFitBatchResult result = RunLruFitBatch(std::move(jobs), pool, &catalog);
  EXPECT_EQ(result.num_ok, 2u);
  EXPECT_EQ(result.statuses[1].code(), StatusCode::kInternal);
  EXPECT_NE(result.statuses[1].message().find("misbehaving"),
            std::string::npos);
}

TEST_F(LruFitBatchIsolationTest, InjectedFaultFailsEveryJobWithoutHanging) {
  FaultSpec spec;
  spec.code = StatusCode::kResourceExhausted;
  FaultInjector::Global().Arm("lru_fit.batch.job", spec);
  ThreadPool pool(4);
  std::vector<LruFitJob> jobs;
  for (int j = 0; j < 6; ++j) {
    LruFitJob job;
    job.trace = std::make_unique<VectorTraceSource>(MakeTrace(j, 1000));
    job.table_pages = 200;
    job.index_name = "ix_" + std::to_string(j);
    jobs.push_back(std::move(job));
  }
  StatsCatalog catalog;
  LruFitBatchResult result = RunLruFitBatch(std::move(jobs), pool, &catalog);
  EXPECT_EQ(result.num_ok, 0u);
  for (const Status& s : result.statuses) {
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(catalog.size(), 0u);
}

// A shard-task failure inside the sharded simulation must drain cleanly
// and surface through RunLruFit (not hang the bounded in-flight window).
TEST_F(LruFitBatchIsolationTest, ShardTaskFaultDrainsWithoutDeadlock) {
  FaultSpec spec;
  spec.max_fires = 1;
  spec.code = StatusCode::kInternal;
  FaultInjector::Global().Arm("sd.shard.task", spec);
  ThreadPool pool(4);
  LruFitOptions options;
  options.pool = &pool;
  options.num_shards = 8;
  auto stats = RunLruFit(MakeTrace(1, 20000), 200, 100, "ix", options);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
  FaultInjector::Global().DisarmAll();
  // Recovery: the identical call succeeds on the next clean run.
  EXPECT_TRUE(RunLruFit(MakeTrace(1, 20000), 200, 100, "ix", options).ok());
}

}  // namespace
}  // namespace epfis
