// Edge-case taxonomy tests for the two file-backed trace readers:
// PageTraceReader (ifstream, lazy body validation) and MmapTraceSource
// (mmap, eager validation at Open). Both must classify every malformed
// file identically — same StatusCode — even though the mmap reader
// surfaces body errors at Open while the streaming reader surfaces them
// on the Read that trips over them.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "epfis/trace_io.h"
#include "epfis/trace_source.h"
#include "util/random.h"

namespace epfis {
namespace {

class TempTraceFile {
 public:
  explicit TempTraceFile(const std::string& name)
      : path_("/tmp/epfis_mmap_test_" + name + ".bin") {}
  ~TempTraceFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

  void WriteRaw(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  void AppendRaw(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  void Truncate(long delta) {
    std::ifstream in(path_, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    contents.resize(contents.size() - static_cast<size_t>(delta));
    WriteRaw(contents);
  }

 private:
  std::string path_;
};

// Status the streaming reader assigns to `path`, wherever it surfaces:
// at Open or on any Read (draining the whole file).
Status StreamingVerdict(const std::string& path) {
  auto reader = PageTraceReader::Open(path);
  if (!reader.ok()) return reader.status();
  PageId buf[64];
  for (;;) {
    auto n = reader->Read(buf, 64);
    if (!n.ok()) return n.status();
    if (*n == 0) return Status::Ok();
  }
}

Status MmapVerdict(const std::string& path) {
  auto source = MmapTraceSource::Open(path);
  if (!source.ok()) return source.status();
  PageId buf[64];
  for (;;) {
    auto n = source->Next(buf, 64);
    if (!n.ok()) return n.status();
    if (*n == 0) return Status::Ok();
  }
}

TEST(MmapTraceSourceTest, SupportedOnThisPlatform) {
  // The CI and dev platforms are POSIX; the fallback path is exercised
  // through OpenTraceSource's taxonomy tests below either way.
  EXPECT_TRUE(MmapTraceSource::Supported());
}

TEST(MmapTraceSourceTest, RoundTripsAndResets) {
  Rng rng(7);
  std::vector<PageId> trace;
  for (int i = 0; i < 50'000; ++i) {
    trace.push_back(static_cast<PageId>(rng.NextBounded(999)));
  }
  TempTraceFile file("roundtrip");
  ASSERT_TRUE(SavePageTrace(trace, file.path()).ok());

  auto source = MmapTraceSource::Open(file.path());
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ASSERT_TRUE(source->size_hint().has_value());
  EXPECT_EQ(*source->size_hint(), trace.size());
  EXPECT_EQ(source->count(), trace.size());

  // Chunk size deliberately not a divisor of the trace length.
  std::vector<PageId> drained;
  std::vector<PageId> buf(4'097);
  for (;;) {
    auto n = source->Next(buf.data(), buf.size());
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    drained.insert(drained.end(), buf.begin(), buf.begin() + *n);
  }
  EXPECT_EQ(drained, trace);

  // Zero-copy view sees the same entries.
  ASSERT_NE(source->entries(), nullptr);
  EXPECT_EQ(source->entries()[0], trace[0]);
  EXPECT_EQ(source->entries()[trace.size() - 1], trace.back());

  ASSERT_TRUE(source->Reset().ok());
  auto n = source->Next(buf.data(), 3);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(buf[0], trace[0]);
}

TEST(MmapTraceSourceTest, MoveTransfersTheMapping) {
  TempTraceFile file("move");
  ASSERT_TRUE(SavePageTrace({1, 2, 3}, file.path()).ok());
  auto opened = MmapTraceSource::Open(file.path());
  ASSERT_TRUE(opened.ok());
  MmapTraceSource moved = std::move(opened).value();
  PageId buf[8];
  auto n = moved.Next(buf, 8);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(buf[2], 3u);
}

TEST(MmapTraceSourceTest, MissingFileIsIoErrorInBothReaders) {
  const std::string path = "/tmp/epfis_no_such_trace_mmap.bin";
  EXPECT_EQ(MmapVerdict(path).code(), StatusCode::kIoError);
  EXPECT_EQ(StreamingVerdict(path).code(), StatusCode::kIoError);
}

TEST(MmapTraceSourceTest, EmptyTraceIsValidInBothReaders) {
  TempTraceFile file("empty");
  ASSERT_TRUE(SavePageTrace({}, file.path()).ok());
  EXPECT_TRUE(MmapVerdict(file.path()).ok());
  EXPECT_TRUE(StreamingVerdict(file.path()).ok());
  auto source = MmapTraceSource::Open(file.path());
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(*source->size_hint(), 0u);
  PageId buf[4];
  EXPECT_EQ(source->Next(buf, 4).value(), 0u);
}

TEST(MmapTraceSourceTest, TruncatedBodyIsCorruptionInBothReaders) {
  TempTraceFile file("truncated");
  ASSERT_TRUE(SavePageTrace({1, 2, 3, 4, 5}, file.path()).ok());
  file.Truncate(2);  // Chop into the last entry.
  EXPECT_EQ(MmapVerdict(file.path()).code(), StatusCode::kCorruption);
  EXPECT_EQ(StreamingVerdict(file.path()).code(), StatusCode::kCorruption);
}

TEST(MmapTraceSourceTest, TrailingBytesAreCorruptionInBothReaders) {
  TempTraceFile file("trailing");
  ASSERT_TRUE(SavePageTrace({1, 2, 3}, file.path()).ok());
  file.AppendRaw("xx");
  EXPECT_EQ(MmapVerdict(file.path()).code(), StatusCode::kCorruption);
  EXPECT_EQ(StreamingVerdict(file.path()).code(), StatusCode::kCorruption);
}

TEST(MmapTraceSourceTest, ForeignMagicIsCorruptionInBothReaders) {
  TempTraceFile file("magic");
  std::string foreign = "NOTEPFIS";
  foreign.append(8, '\0');  // Plausible length field after the bad magic.
  file.WriteRaw(foreign);
  EXPECT_EQ(MmapVerdict(file.path()).code(), StatusCode::kCorruption);
  EXPECT_EQ(StreamingVerdict(file.path()).code(), StatusCode::kCorruption);
}

TEST(MmapTraceSourceTest, TruncatedHeaderIsCorruptionInBothReaders) {
  TempTraceFile file("header");
  file.WriteRaw("EPFT");  // Shorter than the magic itself.
  EXPECT_EQ(MmapVerdict(file.path()).code(), StatusCode::kCorruption);
  EXPECT_EQ(StreamingVerdict(file.path()).code(), StatusCode::kCorruption);
}

// Regression: a zero-length file used to reach mmap itself, and mapping 0
// bytes is EINVAL on Linux — the old code surfaced that as an IoError (or
// worse on platforms where mmap(0) "succeeds" with an unusable mapping).
// Sub-header files must be rejected before mmap with the same Status the
// streaming reader produces, message and code alike.
TEST(MmapTraceSourceTest, ZeroLengthFileIsBadMagicInBothReaders) {
  TempTraceFile file("zero");
  file.WriteRaw("");
  Status mmap_status = MmapVerdict(file.path());
  Status stream_status = StreamingVerdict(file.path());
  EXPECT_EQ(mmap_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(stream_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(mmap_status.ToString(), stream_status.ToString());
}

TEST(MmapTraceSourceTest, GoodMagicTruncatedCountInBothReaders) {
  // 8 valid magic bytes followed by only half of the u64 count: both
  // readers must call this a truncated header, not bad magic.
  TempTraceFile file("partial_count");
  std::string bytes(kPageTraceMagic, 8);
  bytes.append(4, '\0');
  file.WriteRaw(bytes);
  Status mmap_status = MmapVerdict(file.path());
  Status stream_status = StreamingVerdict(file.path());
  EXPECT_EQ(mmap_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(stream_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(mmap_status.ToString(), stream_status.ToString());
  EXPECT_NE(mmap_status.ToString().find("truncated header"),
            std::string::npos)
      << mmap_status.ToString();
}

TEST(MmapTraceSourceTest, HeaderOnlyFileIsAValidEmptyTrace) {
  // Exactly the 16 header bytes with count = 0: the smallest valid file.
  TempTraceFile file("header_only");
  std::string bytes(kPageTraceMagic, 8);
  bytes.append(8, '\0');
  file.WriteRaw(bytes);
  EXPECT_TRUE(MmapVerdict(file.path()).ok());
  EXPECT_TRUE(StreamingVerdict(file.path()).ok());
}

TEST(OpenTraceSourceTest, PicksAWorkingSourceAndPropagatesCorruption) {
  TempTraceFile file("factory");
  std::vector<PageId> trace{4, 5, 6, 4};
  ASSERT_TRUE(SavePageTrace(trace, file.path()).ok());
  auto source = OpenTraceSource(file.path());
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ASSERT_TRUE((*source)->size_hint().has_value());
  EXPECT_EQ(*(*source)->size_hint(), trace.size());
  PageId buf[8];
  auto n = (*source)->Next(buf, 8);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(buf[3], 4u);

  file.AppendRaw("z");
  EXPECT_EQ(OpenTraceSource(file.path()).status().code(),
            StatusCode::kCorruption);

  // A zero-length file is a format error, not an mmap I/O failure: the
  // factory must report Corruption rather than crash or silently fall
  // back to a reader that fails later.
  file.WriteRaw("");
  EXPECT_EQ(OpenTraceSource(file.path()).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace epfis
