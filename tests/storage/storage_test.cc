#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/record.h"
#include "storage/schema.h"
#include "storage/slotted_page.h"

namespace epfis {
namespace {

TEST(DiskManagerTest, AllocatesSequentialIds) {
  DiskManager disk;
  EXPECT_EQ(disk.AllocatePage(), 0u);
  EXPECT_EQ(disk.AllocatePage(), 1u);
  EXPECT_EQ(disk.AllocatePage(), 2u);
  EXPECT_EQ(disk.num_pages(), 3u);
}

TEST(DiskManagerTest, RoundTripsPageContents) {
  DiskManager disk;
  PageId pid = disk.AllocatePage();
  char out[kPageSize], in[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) {
    out[i] = static_cast<char>(i % 251);
  }
  ASSERT_TRUE(disk.WritePage(pid, out).ok());
  ASSERT_TRUE(disk.ReadPage(pid, in).ok());
  EXPECT_EQ(std::memcmp(out, in, kPageSize), 0);
}

TEST(DiskManagerTest, NewPagesAreZeroFilled) {
  DiskManager disk;
  PageId pid = disk.AllocatePage();
  char in[kPageSize];
  ASSERT_TRUE(disk.ReadPage(pid, in).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(in[i], 0);
}

TEST(DiskManagerTest, CountsReadsAndWrites) {
  DiskManager disk;
  PageId pid = disk.AllocatePage();
  char buf[kPageSize] = {};
  ASSERT_TRUE(disk.WritePage(pid, buf).ok());
  ASSERT_TRUE(disk.ReadPage(pid, buf).ok());
  ASSERT_TRUE(disk.ReadPage(pid, buf).ok());
  EXPECT_EQ(disk.num_writes(), 1u);
  EXPECT_EQ(disk.num_reads(), 2u);
  disk.ResetCounters();
  EXPECT_EQ(disk.num_writes(), 0u);
  EXPECT_EQ(disk.num_reads(), 0u);
}

TEST(DiskManagerTest, OutOfRangeAccessFails) {
  DiskManager disk;
  char buf[kPageSize] = {};
  EXPECT_EQ(disk.ReadPage(5, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk.WritePage(5, buf).code(), StatusCode::kOutOfRange);
}

class SlottedPageTest : public ::testing::Test {
 protected:
  void SetUp() override { page_ = SlottedPage::Format(buffer_); }
  char buffer_[kPageSize];
  SlottedPage page_{buffer_};
};

TEST_F(SlottedPageTest, FormatYieldsEmptyPage) {
  EXPECT_EQ(page_.num_slots(), 0u);
  EXPECT_EQ(page_.num_records(), 0u);
  EXPECT_GT(page_.FreeSpace(), 4000u);
}

TEST_F(SlottedPageTest, InsertAndGet) {
  auto slot = page_.Insert("hello");
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot.value(), 0u);
  auto got = page_.Get(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "hello");
  EXPECT_EQ(page_.num_records(), 1u);
}

TEST_F(SlottedPageTest, MultipleRecordsKeepDistinctContents) {
  std::vector<std::string> payloads;
  for (int i = 0; i < 20; ++i) {
    payloads.push_back("record-" + std::to_string(i));
    ASSERT_TRUE(page_.Insert(payloads.back()).ok());
  }
  for (int i = 0; i < 20; ++i) {
    auto got = page_.Get(static_cast<uint16_t>(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), payloads[i]);
  }
}

TEST_F(SlottedPageTest, FillsUntilExactCapacity) {
  // 60-byte records + 4-byte slots: fits floor(4092/64) = 63 records.
  std::string payload(60, 'x');
  int inserted = 0;
  while (true) {
    auto slot = page_.Insert(payload);
    if (!slot.ok()) {
      EXPECT_EQ(slot.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    ++inserted;
    ASSERT_LT(inserted, 100);
  }
  EXPECT_EQ(inserted, 63);
}

TEST_F(SlottedPageTest, DeleteMarksSlot) {
  ASSERT_TRUE(page_.Insert("abc").ok());
  ASSERT_TRUE(page_.Insert("def").ok());
  ASSERT_TRUE(page_.Delete(0).ok());
  EXPECT_EQ(page_.num_records(), 1u);
  EXPECT_EQ(page_.num_slots(), 2u);
  EXPECT_EQ(page_.Get(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(page_.Get(1).value(), "def");
  EXPECT_EQ(page_.Delete(0).code(), StatusCode::kNotFound);
  EXPECT_EQ(page_.Delete(9).code(), StatusCode::kOutOfRange);
}

TEST_F(SlottedPageTest, GetOutOfRange) {
  EXPECT_EQ(page_.Get(0).status().code(), StatusCode::kOutOfRange);
}

TEST(SchemaTest, RejectsEmptyAndTooSmall) {
  EXPECT_FALSE(Schema::Make({}).ok());
  EXPECT_FALSE(Schema::Make({Column{"a"}, Column{"b"}}, 8).ok());
}

TEST(SchemaTest, DefaultRecordSizeIsFieldBytes) {
  auto schema = Schema::Make({Column{"a"}, Column{"b"}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->record_size(), 16u);
  EXPECT_EQ(schema->num_columns(), 2u);
}

TEST(SchemaTest, ColumnIndexLookup) {
  auto schema = Schema::Make({Column{"key"}, Column{"val"}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->ColumnIndex("key").value(), 0u);
  EXPECT_EQ(schema->ColumnIndex("val").value(), 1u);
  EXPECT_FALSE(schema->ColumnIndex("zzz").ok());
}

TEST(SchemaTest, RecordsPerPageAtLeastRequestedFit) {
  // Byte math guarantees *at least* R records fit (the exact count is
  // enforced by TableHeap's per-page cap; see table_heap_test.cc).
  for (uint32_t r : {1u, 10u, 20u, 40u, 80u, 104u, 123u, 255u}) {
    auto schema = Schema::MakeWithRecordsPerPage({Column{"k"}}, r);
    ASSERT_TRUE(schema.ok()) << "r=" << r;
    char buf[kPageSize];
    SlottedPage page = SlottedPage::Format(buf);
    std::string payload(schema->record_size(), 'p');
    uint32_t fit = 0;
    while (page.Insert(payload).ok()) ++fit;
    EXPECT_GE(fit, r) << "r=" << r;
    EXPECT_LE(fit, r + r / 16 + 1) << "r=" << r;  // Not wildly more.
  }
}

TEST(SchemaTest, RecordsPerPageImpossible) {
  EXPECT_FALSE(Schema::MakeWithRecordsPerPage({Column{"k"}}, 0).ok());
  EXPECT_FALSE(Schema::MakeWithRecordsPerPage({Column{"k"}}, 2000).ok());
}

TEST(RecordTest, SerializeDeserializeRoundTrip) {
  auto schema = Schema::Make({Column{"a"}, Column{"b"}}, 32);
  ASSERT_TRUE(schema.ok());
  Record record({-123456789, 42});
  auto bytes = record.Serialize(*schema);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->size(), 32u);
  auto back = Record::Deserialize(*schema, *bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, record);
  EXPECT_EQ(back->value(0), -123456789);
  EXPECT_EQ(back->value(1), 42);
}

TEST(RecordTest, ArityMismatchFails) {
  auto schema = Schema::Make({Column{"a"}});
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(Record({1, 2}).Serialize(*schema).ok());
}

TEST(RecordTest, DeserializeWrongSizeFails) {
  auto schema = Schema::Make({Column{"a"}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(Record::Deserialize(*schema, "short").status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace epfis
