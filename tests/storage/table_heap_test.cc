#include "storage/table_heap.h"

#include <gtest/gtest.h>

#include <memory>

#include "buffer/buffer_pool.h"
#include "storage/disk_manager.h"

namespace epfis {
namespace {

class TableHeapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<DiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 16);
    auto schema = Schema::MakeWithRecordsPerPage({Column{"key"}}, 10);
    ASSERT_TRUE(schema.ok());
    heap_ = std::make_unique<TableHeap>(pool_.get(), *schema, "t");
  }

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<TableHeap> heap_;
};

TEST_F(TableHeapTest, StartsEmpty) {
  EXPECT_EQ(heap_->num_pages(), 0u);
  EXPECT_EQ(heap_->num_records(), 0u);
  EXPECT_FALSE(heap_->PageAt(0).ok());
}

TEST_F(TableHeapTest, InsertAllocatesPagesAsNeeded) {
  for (int i = 0; i < 25; ++i) {
    auto rid = heap_->Insert(Record({i}));
    ASSERT_TRUE(rid.ok()) << i;
  }
  // 10 records per page -> 3 pages.
  EXPECT_EQ(heap_->num_pages(), 3u);
  EXPECT_EQ(heap_->num_records(), 25u);
}

TEST_F(TableHeapTest, GetReturnsInserted) {
  auto rid = heap_->Insert(Record({777}));
  ASSERT_TRUE(rid.ok());
  auto rec = heap_->Get(*rid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->value(0), 777);
}

TEST_F(TableHeapTest, InsertIntoSpecificPage) {
  ASSERT_TRUE(heap_->AppendPage().ok());
  ASSERT_TRUE(heap_->AppendPage().ok());
  ASSERT_TRUE(heap_->AppendPage().ok());

  auto rid = heap_->InsertIntoPage(2, Record({5}));
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(rid->page_id, heap_->PageAt(2).value());
  EXPECT_EQ(heap_->Get(*rid)->value(0), 5);
}

TEST_F(TableHeapTest, InsertIntoFullPageFails) {
  ASSERT_TRUE(heap_->AppendPage().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(heap_->InsertIntoPage(0, Record({i})).ok());
  }
  auto rid = heap_->InsertIntoPage(0, Record({99}));
  EXPECT_EQ(rid.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(TableHeapTest, InsertIntoBadOrdinalFails) {
  EXPECT_EQ(heap_->InsertIntoPage(3, Record({1})).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(TableHeapTest, ForEachVisitsAllInPageOrder) {
  for (int i = 0; i < 23; ++i) {
    ASSERT_TRUE(heap_->Insert(Record({i})).ok());
  }
  std::vector<int64_t> seen;
  ASSERT_TRUE(heap_
                  ->ForEach([&](const Rid&, const Record& r) {
                    seen.push_back(r.value(0));
                    return true;
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 23u);
  for (int i = 0; i < 23; ++i) EXPECT_EQ(seen[i], i);
}

TEST_F(TableHeapTest, ForEachEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(heap_->Insert(Record({i})).ok());
  }
  int count = 0;
  ASSERT_TRUE(heap_
                  ->ForEach([&](const Rid&, const Record&) {
                    return ++count < 4;
                  })
                  .ok());
  EXPECT_EQ(count, 4);
}

TEST_F(TableHeapTest, SurvivesPoolEviction) {
  // Pool of 16 frames, 50 pages of data: inserted records must survive
  // eviction and read back through a *fresh* pool.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(heap_->Insert(Record({i})).ok());
  }
  EXPECT_EQ(heap_->num_pages(), 50u);
  ASSERT_TRUE(pool_->FlushAll().ok());

  BufferPool fresh(disk_.get(), 4);
  auto schema = Schema::MakeWithRecordsPerPage({Column{"key"}}, 10);
  // Read every page via the original heap (its pool still works too).
  std::vector<int64_t> seen;
  ASSERT_TRUE(heap_
                  ->ForEach([&](const Rid&, const Record& r) {
                    seen.push_back(r.value(0));
                    return true;
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace epfis
