#include <gtest/gtest.h>

#include <memory>

#include "buffer/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/table_heap.h"

namespace epfis {
namespace {

TEST(TableHeapCapTest, ExactRecordsPerPageEnforced) {
  for (uint32_t r : {1u, 20u, 40u, 76u, 104u, 123u}) {
    DiskManager disk;
    BufferPool pool(&disk, 8);
    auto schema = Schema::MakeWithRecordsPerPage({Column{"k"}}, r);
    ASSERT_TRUE(schema.ok()) << "r=" << r;
    TableHeap heap(&pool, *schema, "capped", r);
    ASSERT_TRUE(heap.AppendPage().ok());
    for (uint32_t i = 0; i < r; ++i) {
      ASSERT_TRUE(heap.InsertIntoPage(0, Record({i})).ok())
          << "r=" << r << " i=" << i;
    }
    auto overflow = heap.InsertIntoPage(0, Record({0}));
    EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted)
        << "r=" << r;
  }
}

TEST(TableHeapCapTest, AppendInsertRespectsCap) {
  DiskManager disk;
  BufferPool pool(&disk, 8);
  auto schema = Schema::MakeWithRecordsPerPage({Column{"k"}}, 7);
  ASSERT_TRUE(schema.ok());
  TableHeap heap(&pool, *schema, "capped", 7);
  for (int i = 0; i < 70; ++i) {
    ASSERT_TRUE(heap.Insert(Record({i})).ok());
  }
  EXPECT_EQ(heap.num_pages(), 10u);
}

TEST(TableHeapCapTest, ZeroCapMeansByteLimited) {
  DiskManager disk;
  BufferPool pool(&disk, 8);
  auto schema = Schema::Make({Column{"k"}});
  ASSERT_TRUE(schema.ok());
  TableHeap heap(&pool, *schema, "uncapped", 0);
  ASSERT_TRUE(heap.AppendPage().ok());
  // 8-byte records, 4-byte slots: (4096-4)/12 = 341 fit.
  int inserted = 0;
  while (heap.InsertIntoPage(0, Record({1})).ok()) ++inserted;
  EXPECT_EQ(inserted, 341);
}

}  // namespace
}  // namespace epfis
