// End-to-end tests tying the whole pipeline together: data generation ->
// B-tree -> LRU-Fit -> catalog persistence -> Est-IO -> optimizer, checked
// against physically executed scans.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "buffer/stack_distance.h"
#include "catalog/catalog.h"
#include "epfis/epfis.h"
#include "exec/index_scan.h"
#include "exec/optimizer.h"
#include "exec/table_scan.h"
#include "harness/experiment.h"
#include "workload/data_gen.h"
#include "workload/scan_gen.h"

namespace epfis {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.num_records = 24000;
    spec.num_distinct = 600;
    spec.records_per_page = 24;
    spec.window_fraction = 0.15;
    spec.seed = 81;
    auto dataset = GenerateSynthetic(spec);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
  }

  std::unique_ptr<Dataset> dataset_;
};

TEST_F(IntegrationTest, EstimateTracksMeasuredFetchesAcrossBufferSizes) {
  // Statistics once...
  auto trace = dataset_->FullIndexPageTrace();
  ASSERT_TRUE(trace.ok());
  auto stats = RunLruFit(*trace, dataset_->num_pages(),
                         dataset_->num_distinct(), "idx");
  ASSERT_TRUE(stats.ok());

  // ...then estimates vs physical executions for several scans x buffers.
  ScanGenerator gen(dataset_.get(), 5);
  for (int i = 0; i < 6; ++i) {
    ScanRange scan = (i % 2 == 0) ? gen.Large() : gen.Small();
    KeyRange range = KeyRange::Closed(scan.lo_key, scan.hi_key);
    for (uint64_t b : {50ULL, 200ULL, 600ULL, 1000ULL}) {
      auto pool = dataset_->MakeDataPool(b);
      auto run = RunIndexScan(*dataset_->index(), *dataset_->table(),
                              pool.get(), range);
      ASSERT_TRUE(run.ok());
      double est =
          EstIo::Estimate(*stats, {scan.sigma, 1.0, b}).value();
      double actual = static_cast<double>(run->data_page_fetches);
      // Generous per-scan envelope: the paper's accuracy claim is about
      // the metric aggregated over 200 scans; individual small scans on
      // window-clustered data can be overestimated ~2x by the §4.2
      // correction term (see bench_ablation_phi). Require the estimate to
      // track within a small constant factor, never orders of magnitude.
      EXPECT_NEAR(est, actual, 2.0 * actual + 60.0)
          << "sigma=" << scan.sigma << " b=" << b;
    }
  }
}

TEST_F(IntegrationTest, CatalogPersistenceProducesIdenticalEstimates) {
  auto trace = dataset_->FullIndexPageTrace();
  ASSERT_TRUE(trace.ok());
  auto stats = RunLruFit(*trace, dataset_->num_pages(),
                         dataset_->num_distinct(), "idx");
  ASSERT_TRUE(stats.ok());

  StatsCatalog catalog;
  catalog.Put(*stats);
  std::string path = testing::TempDir() + "/epfis_integration.cat";
  ASSERT_TRUE(catalog.SaveToFile(path).ok());

  StatsCatalog restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  auto loaded = restored.Get("idx");
  ASSERT_TRUE(loaded.ok());

  for (double sigma : {0.01, 0.1, 0.5, 1.0}) {
    for (uint64_t b : {30ULL, 100ULL, 500ULL}) {
      EXPECT_DOUBLE_EQ(EstIo::Estimate(*stats, {sigma, 1.0, b}).value(),
                       EstIo::Estimate(*loaded, {sigma, 1.0, b}).value());
    }
  }
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, OptimizerChoiceAgreesWithMeasuredCosts) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("t", dataset_->table()).ok());
  ASSERT_TRUE(catalog.RegisterIndex("t.key", "t", 0, dataset_->index()).ok());
  auto trace = dataset_->FullIndexPageTrace();
  ASSERT_TRUE(trace.ok());
  auto stats = RunLruFit(*trace, dataset_->num_pages(),
                         dataset_->num_distinct(), "t.key");
  ASSERT_TRUE(stats.ok());
  catalog.stats().Put(std::move(stats).value());

  AccessPathOptimizer optimizer(&catalog);

  // A very selective query with a decent buffer: optimizer must choose the
  // index, and the measured index cost must indeed beat the table scan.
  ScanGenerator gen(dataset_.get(), 17);
  ScanRange scan = gen.FromFraction(0.01);
  Query query;
  query.table = "t";
  query.column = 0;
  query.range = KeyRange::Closed(scan.lo_key, scan.hi_key);
  query.sigma = scan.sigma;
  uint64_t buffer = 400;

  auto plan = optimizer.Choose(query, buffer);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->type, AccessPlan::Type::kIndexScan);

  auto index_pool = dataset_->MakeDataPool(buffer);
  auto index_run = RunIndexScan(*dataset_->index(), *dataset_->table(),
                                index_pool.get(), query.range);
  ASSERT_TRUE(index_run.ok());
  auto table_pool = dataset_->MakeDataPool(buffer);
  auto table_run = RunTableScan(*dataset_->table(), table_pool.get(),
                                query.range, 0);
  ASSERT_TRUE(table_run.ok());
  EXPECT_LT(index_run->data_page_fetches, table_run->pages_fetched);
}

TEST_F(IntegrationTest, HarnessGroundTruthMatchesPhysicalExecution) {
  // The harness derives a_i(B) from the stack simulator; verify a few scans
  // against real buffer-pool executions.
  ScanGenerator gen(dataset_.get(), 23);
  ExperimentConfig config;
  config.min_buffer_pages = 40;
  for (int i = 0; i < 4; ++i) {
    ScanRange scan = gen.Next(ScanMix::kMixed);
    KeyRange range = KeyRange::Closed(scan.lo_key, scan.hi_key);
    auto trace = CollectScanTrace(*dataset_->index(), range);
    ASSERT_TRUE(trace.ok());
    StackDistanceSimulator sim(trace->size() + 1);
    sim.AccessAll(*trace);
    for (uint64_t b : SweepBufferSizes(dataset_->num_pages(), config)) {
      auto pool = dataset_->MakeDataPool(b);
      auto run = RunIndexScan(*dataset_->index(), *dataset_->table(),
                              pool.get(), range);
      ASSERT_TRUE(run.ok());
      ASSERT_EQ(sim.Fetches(b), run->data_page_fetches)
          << "scan " << i << " b=" << b;
    }
  }
}

TEST_F(IntegrationTest, FullScanEstimateMatchesMeasuredFullScan) {
  auto trace = dataset_->FullIndexPageTrace();
  ASSERT_TRUE(trace.ok());
  auto stats = RunLruFit(*trace, dataset_->num_pages(),
                         dataset_->num_distinct(), "idx");
  ASSERT_TRUE(stats.ok());

  for (uint64_t b : {stats->b_min, (stats->b_min + stats->b_max) / 2,
                     stats->b_max}) {
    auto pool = dataset_->MakeDataPool(b);
    auto run = RunIndexScan(*dataset_->index(), *dataset_->table(),
                            pool.get(), KeyRange::All());
    ASSERT_TRUE(run.ok());
    double est = EstIo::EstimateFullScan(*stats, b).value();
    double actual = static_cast<double>(run->data_page_fetches);
    // The 6-segment fit tracks the measured curve within a few percent.
    EXPECT_NEAR(est, actual, 0.05 * actual + 20.0) << "b=" << b;
  }
}

}  // namespace
}  // namespace epfis
