#include "exec/rid_list.h"

#include <gtest/gtest.h>

#include <memory>

#include "exec/index_scan.h"
#include "exec/multi_index.h"
#include "util/formulas.h"
#include "workload/data_gen.h"

namespace epfis {
namespace {

TEST(RidListTest, FromRidsSortsAndDedupes) {
  RidList list = RidList::FromRids(
      {Rid{5, 1}, Rid{2, 3}, Rid{5, 1}, Rid{2, 0}, Rid{9, 9}});
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list.rids()[0], (Rid{2, 0}));
  EXPECT_EQ(list.rids()[1], (Rid{2, 3}));
  EXPECT_EQ(list.rids()[2], (Rid{5, 1}));
  EXPECT_EQ(list.rids()[3], (Rid{9, 9}));
  EXPECT_EQ(list.DistinctPages(), 3u);
}

TEST(RidListTest, AndOrSemantics) {
  RidList a = RidList::FromRids({Rid{1, 0}, Rid{2, 0}, Rid{3, 0}});
  RidList b = RidList::FromRids({Rid{2, 0}, Rid{3, 0}, Rid{4, 0}});
  RidList both = RidList::And(a, b);
  RidList either = RidList::Or(a, b);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both.rids()[0].page_id, 2u);
  EXPECT_EQ(both.rids()[1].page_id, 3u);
  ASSERT_EQ(either.size(), 4u);
  EXPECT_EQ(either.rids().front().page_id, 1u);
  EXPECT_EQ(either.rids().back().page_id, 4u);
}

TEST(RidListTest, AndOrWithEmpty) {
  RidList a = RidList::FromRids({Rid{1, 0}});
  RidList empty;
  EXPECT_EQ(RidList::And(a, empty).size(), 0u);
  EXPECT_EQ(RidList::Or(a, empty).size(), 1u);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.DistinctPages(), 0u);
}

class RidListDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.num_records = 8000;
    spec.num_distinct = 200;
    spec.records_per_page = 20;
    spec.window_fraction = 0.5;  // Unclustered: sorting matters.
    spec.secondary_distinct = 50;
    spec.seed = 91;
    auto dataset = GenerateSynthetic(spec);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
  }

  std::unique_ptr<Dataset> dataset_;
};

TEST_F(RidListDatasetTest, FromIndexRangeMatchesRecordCount) {
  auto list = RidList::FromIndexRange(*dataset_->index(),
                                      KeyRange::Closed(10, 40));
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), dataset_->RecordsInRange(10, 40));
}

TEST_F(RidListDatasetTest, SortedFetchIsBufferIndependent) {
  auto list = RidList::FromIndexRange(*dataset_->index(),
                                      KeyRange::Closed(1, 100));
  ASSERT_TRUE(list.ok());
  uint64_t expected_pages = list->DistinctPages();
  for (size_t pool_size : {1u, 8u, 64u, 400u}) {
    auto pool = dataset_->MakeDataPool(pool_size);
    auto fetch = FetchRidList(*dataset_->table(), pool.get(), *list);
    ASSERT_TRUE(fetch.ok());
    // Sorted order: each distinct page fetched exactly once, even B=1.
    EXPECT_EQ(fetch->data_page_fetches, expected_pages)
        << "pool=" << pool_size;
    EXPECT_EQ(fetch->data_pages_accessed, expected_pages);
    EXPECT_EQ(fetch->records_fetched, list->size());
  }
}

TEST_F(RidListDatasetTest, SortedFetchBeatsUnsortedScanOnSmallBuffers) {
  KeyRange range = KeyRange::Closed(1, 150);
  auto list = RidList::FromIndexRange(*dataset_->index(), range);
  ASSERT_TRUE(list.ok());
  auto rid_pool = dataset_->MakeDataPool(4);
  auto rid_fetch =
      FetchRidList(*dataset_->table(), rid_pool.get(), *list).value();

  auto scan_pool = dataset_->MakeDataPool(4);
  auto scan = RunIndexScan(*dataset_->index(), *dataset_->table(),
                           scan_pool.get(), range)
                  .value();
  EXPECT_LT(rid_fetch.data_page_fetches, scan.data_page_fetches);
}

TEST_F(RidListDatasetTest, YaoEstimateTracksRidFetch) {
  // Yao's model assumes uniformly random record placement. On a K=1
  // (uniform) dataset it must be tight; on the windowed fixture it can
  // only overestimate (clustering concentrates records onto fewer pages).
  SyntheticSpec spec;
  spec.num_records = 8000;
  spec.num_distinct = 200;
  spec.records_per_page = 20;
  spec.window_fraction = 1.0;
  spec.noise = 0.0;
  spec.seed = 92;
  auto uniform = GenerateSynthetic(spec);
  ASSERT_TRUE(uniform.ok());

  for (int64_t hi : {20, 60, 140}) {
    auto list = RidList::FromIndexRange(*(*uniform)->index(),
                                        KeyRange::Closed(1, hi));
    ASSERT_TRUE(list.ok());
    double k = static_cast<double>(list->size());
    double est = EstimateRidFetchPages(
        static_cast<double>((*uniform)->num_records()),
        static_cast<double>((*uniform)->num_pages()), k);
    double actual = static_cast<double>(list->DistinctPages());
    EXPECT_NEAR(est, actual, 0.08 * actual + 5.0) << "hi=" << hi;
  }

  // Windowed fixture: Yao is an upper bound (within noise).
  auto list = RidList::FromIndexRange(*dataset_->index(),
                                      KeyRange::Closed(1, 60));
  ASSERT_TRUE(list.ok());
  double est = EstimateRidFetchPages(
      static_cast<double>(dataset_->num_records()),
      static_cast<double>(dataset_->num_pages()),
      static_cast<double>(list->size()));
  EXPECT_GE(est, 0.95 * static_cast<double>(list->DistinctPages()));
}

TEST_F(RidListDatasetTest, MultiIndexAndOrExecution) {
  KeyRange r1 = KeyRange::Closed(1, 100);   // Half the primary domain.
  KeyRange r2 = KeyRange::Closed(1, 25);    // Half the secondary domain.
  auto pool = dataset_->MakeDataPool(32);
  auto anded = RunMultiIndexScan(*dataset_->index(), r1, *dataset_->index2(),
                                 r2, IndexCombineOp::kAnd,
                                 *dataset_->table(), pool.get());
  ASSERT_TRUE(anded.ok());
  auto pool2 = dataset_->MakeDataPool(32);
  auto ored = RunMultiIndexScan(*dataset_->index(), r1, *dataset_->index2(),
                                r2, IndexCombineOp::kOr, *dataset_->table(),
                                pool2.get());
  ASSERT_TRUE(ored.ok());

  uint64_t n1 = dataset_->RecordsInRange(1, 100);
  uint64_t n2 = dataset_->SecondaryRecordsInRange(1, 25);
  EXPECT_EQ(anded->rids_from_first, n1);
  EXPECT_EQ(anded->rids_from_second, n2);
  // Inclusion-exclusion ties the two executions together exactly.
  EXPECT_EQ(anded->rids_combined + ored->rids_combined, n1 + n2);
  EXPECT_LE(anded->rids_combined, std::min(n1, n2));
  EXPECT_GE(ored->rids_combined, std::max(n1, n2));
  // Sorted fetches: one per distinct page.
  EXPECT_EQ(anded->data_page_fetches, anded->data_pages_accessed);
  EXPECT_EQ(ored->data_page_fetches, ored->data_pages_accessed);
}

TEST_F(RidListDatasetTest, MultiIndexEstimatesTrackMeasurement) {
  double n = static_cast<double>(dataset_->num_records());
  double t = static_cast<double>(dataset_->num_pages());
  double sigma1 =
      static_cast<double>(dataset_->RecordsInRange(1, 100)) / n;
  double sigma2 =
      static_cast<double>(dataset_->SecondaryRecordsInRange(1, 25)) / n;

  auto pool = dataset_->MakeDataPool(32);
  auto anded = RunMultiIndexScan(*dataset_->index(), KeyRange::Closed(1, 100),
                                 *dataset_->index2(), KeyRange::Closed(1, 25),
                                 IndexCombineOp::kAnd, *dataset_->table(),
                                 pool.get())
                   .value();
  double est_records =
      EstimateCombinedRecords(n, sigma1, sigma2, IndexCombineOp::kAnd);
  EXPECT_NEAR(est_records, static_cast<double>(anded.rids_combined),
              0.15 * est_records + 20.0);
  double est_pages = EstimateMultiIndexFetchPages(n, t, sigma1, sigma2,
                                                  IndexCombineOp::kAnd);
  EXPECT_NEAR(est_pages, static_cast<double>(anded.data_page_fetches),
              0.30 * est_pages + 20.0);
}

TEST(MultiIndexEstimateTest, CombinationFormulas) {
  EXPECT_DOUBLE_EQ(
      EstimateCombinedRecords(1000, 0.5, 0.2, IndexCombineOp::kAnd), 100.0);
  EXPECT_DOUBLE_EQ(
      EstimateCombinedRecords(1000, 0.5, 0.2, IndexCombineOp::kOr), 600.0);
  // OR of anything with a full predicate is the full table.
  EXPECT_DOUBLE_EQ(
      EstimateCombinedRecords(1000, 1.0, 0.3, IndexCombineOp::kOr), 1000.0);
}

}  // namespace
}  // namespace epfis
