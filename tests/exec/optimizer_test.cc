#include "exec/optimizer.h"

#include <gtest/gtest.h>

#include <memory>

#include "epfis/lru_fit.h"
#include "workload/data_gen.h"

namespace epfis {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.num_records = 6000;
    spec.num_distinct = 300;
    spec.records_per_page = 20;
    spec.window_fraction = 0.5;  // Unclustered enough to make scans costly.
    spec.seed = 61;
    auto dataset = GenerateSynthetic(spec);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();

    ASSERT_TRUE(catalog_.RegisterTable("t", dataset_->table()).ok());
    ASSERT_TRUE(
        catalog_.RegisterIndex("t.key", "t", 0, dataset_->index()).ok());

    auto trace = dataset_->FullIndexPageTrace();
    ASSERT_TRUE(trace.ok());
    auto stats = RunLruFit(*trace, dataset_->num_pages(),
                           dataset_->num_distinct(), "t.key");
    ASSERT_TRUE(stats.ok());
    catalog_.stats().Put(std::move(stats).value());
  }

  Query MakeQuery(double sigma) {
    Query query;
    query.table = "t";
    query.column = 0;
    query.sigma = sigma;
    int64_t hi = static_cast<int64_t>(sigma * 300);
    query.range = KeyRange::Closed(1, std::max<int64_t>(hi, 1));
    return query;
  }

  std::unique_ptr<Dataset> dataset_;
  Catalog catalog_;
};

TEST_F(OptimizerTest, EnumeratesTableScanPlusIndexes) {
  AccessPathOptimizer optimizer(&catalog_);
  auto plans = optimizer.EnumeratePlans(MakeQuery(0.5), 100);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 2u);  // Table scan + one relevant index.
  // Sorted by cost.
  EXPECT_LE((*plans)[0].total_cost, (*plans)[1].total_cost);
}

TEST_F(OptimizerTest, HighSelectivityPrefersIndexScan) {
  AccessPathOptimizer optimizer(&catalog_);
  auto plan = optimizer.Choose(MakeQuery(0.005), dataset_->num_pages());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->type, AccessPlan::Type::kIndexScan);
  EXPECT_EQ(plan->index_name, "t.key");
}

TEST_F(OptimizerTest, LowSelectivityUnclusteredPrefersTableScan) {
  AccessPathOptimizer optimizer(&catalog_);
  // Full selectivity on an unclustered index with a tiny buffer: the index
  // scan refetches massively; the table scan costs exactly T.
  auto plan = optimizer.Choose(MakeQuery(1.0), 12);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->type, AccessPlan::Type::kTableScan);
}

TEST_F(OptimizerTest, BufferSizeFlipsThePlan) {
  AccessPathOptimizer optimizer(&catalog_);
  Query query = MakeQuery(0.6);
  // Find whether there exists a pair of buffer sizes with different
  // winners: small buffer -> table scan, big buffer -> index scan.
  auto small = optimizer.Choose(query, 12);
  auto large = optimizer.Choose(query, dataset_->num_pages());
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(small->type, AccessPlan::Type::kTableScan);
  EXPECT_EQ(large->type, AccessPlan::Type::kIndexScan);
}

TEST_F(OptimizerTest, SortRequirementPenalizesTableScan) {
  AccessPathOptimizer optimizer(&catalog_);
  Query query = MakeQuery(0.9);
  query.require_sorted = true;
  auto plans = optimizer.EnumeratePlans(query, 50);
  ASSERT_TRUE(plans.ok());
  for (const AccessPlan& plan : *plans) {
    if (plan.type == AccessPlan::Type::kTableScan) {
      EXPECT_GT(plan.sort_cost, 0.0);
      EXPECT_DOUBLE_EQ(plan.total_cost,
                       plan.estimated_fetches + plan.sort_cost);
    } else {
      EXPECT_EQ(plan.sort_cost, 0.0);
    }
  }
}

TEST_F(OptimizerTest, UnknownTableFails) {
  AccessPathOptimizer optimizer(&catalog_);
  Query query = MakeQuery(0.5);
  query.table = "missing";
  EXPECT_FALSE(optimizer.Choose(query, 100).ok());
}

TEST_F(OptimizerTest, IndexWithoutStatsFails) {
  Catalog bare;
  ASSERT_TRUE(bare.RegisterTable("t", dataset_->table()).ok());
  ASSERT_TRUE(bare.RegisterIndex("t.key", "t", 0, dataset_->index()).ok());
  AccessPathOptimizer optimizer(&bare);
  EXPECT_FALSE(optimizer.Choose(MakeQuery(0.5), 100).ok());
}

TEST_F(OptimizerTest, PlanToStringMentionsTypeAndCost) {
  AccessPathOptimizer optimizer(&catalog_);
  auto plan = optimizer.Choose(MakeQuery(0.01), 500);
  ASSERT_TRUE(plan.ok());
  std::string s = plan->ToString();
  EXPECT_NE(s.find("IndexScan"), std::string::npos);
  EXPECT_NE(s.find("cost="), std::string::npos);
}

TEST_F(OptimizerTest, SargablePredicateLowersIndexCost) {
  AccessPathOptimizer optimizer(&catalog_);
  Query plain = MakeQuery(0.4);
  Query filtered = MakeQuery(0.4);
  filtered.sargable_selectivity = 0.05;
  auto p1 = optimizer.EnumeratePlans(plain, 200);
  auto p2 = optimizer.EnumeratePlans(filtered, 200);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  auto index_cost = [](const std::vector<AccessPlan>& plans) {
    for (const AccessPlan& p : plans) {
      if (p.type == AccessPlan::Type::kIndexScan) return p.total_cost;
    }
    return -1.0;
  };
  EXPECT_LT(index_cost(*p2), index_cost(*p1));
}

}  // namespace
}  // namespace epfis
