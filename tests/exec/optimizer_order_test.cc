// §2 plan shape 3: ordering by a column other than the predicate column —
// the optimizer must consider a full scan of an index on the ORDER BY
// column against "scan + sort" alternatives.

#include <gtest/gtest.h>

#include <memory>

#include "epfis/lru_fit.h"
#include "exec/optimizer.h"
#include "workload/data_gen.h"

namespace epfis {
namespace {

class OptimizerOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.num_records = 10000;
    spec.num_distinct = 200;       // Column 0: predicate column.
    spec.secondary_distinct = 50;  // Column 1: ORDER BY column.
    spec.records_per_page = 20;
    spec.window_fraction = 0.2;
    spec.seed = 181;
    auto dataset = GenerateSynthetic(spec);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();

    ASSERT_TRUE(catalog_.RegisterTable("t", dataset_->table()).ok());
    ASSERT_TRUE(
        catalog_.RegisterIndex("t.key", "t", 0, dataset_->index()).ok());
    ASSERT_TRUE(
        catalog_.RegisterIndex("t.key2", "t", 1, dataset_->index2()).ok());

    auto trace1 = dataset_->FullIndexPageTrace().value();
    catalog_.stats().Put(RunLruFit(trace1, dataset_->num_pages(),
                                   dataset_->num_distinct(), "t.key")
                             .value());
    // Statistics for the secondary index from its own entry order.
    std::vector<PageId> trace2;
    auto it = dataset_->index2()->Begin().value();
    while (it.Valid()) {
      trace2.push_back(it.entry().rid.page_id);
      ASSERT_TRUE(it.Next().ok());
    }
    catalog_.stats().Put(RunLruFit(trace2, dataset_->num_pages(),
                                   dataset_->num_secondary_distinct(),
                                   "t.key2")
                             .value());
  }

  std::unique_ptr<Dataset> dataset_;
  Catalog catalog_;
};

TEST_F(OptimizerOrderTest, OrderByOtherColumnAddsFullScanPlan) {
  AccessPathOptimizer optimizer(&catalog_);
  Query query;
  query.table = "t";
  query.column = 0;
  query.range = KeyRange::Closed(1, 100);
  query.sigma = 0.5;
  query.require_sorted = true;
  query.order_column = 1;

  auto plans = optimizer.EnumeratePlans(query, 200);
  ASSERT_TRUE(plans.ok());
  // Table scan + index scan on t.key + full scan on t.key2.
  ASSERT_EQ(plans->size(), 3u);
  bool found_order_index = false;
  for (const AccessPlan& plan : *plans) {
    if (plan.type == AccessPlan::Type::kIndexScan &&
        plan.index_name == "t.key2") {
      found_order_index = true;
      EXPECT_EQ(plan.sort_cost, 0.0);  // Delivers the order directly.
    }
    if (plan.type == AccessPlan::Type::kIndexScan &&
        plan.index_name == "t.key") {
      EXPECT_GT(plan.sort_cost, 0.0);  // Wrong order: must sort.
    }
    if (plan.type == AccessPlan::Type::kTableScan) {
      EXPECT_GT(plan.sort_cost, 0.0);
    }
  }
  EXPECT_TRUE(found_order_index);
}

TEST_F(OptimizerOrderTest, NoExtraPlanWhenOrderMatchesPredicateColumn) {
  AccessPathOptimizer optimizer(&catalog_);
  Query query;
  query.table = "t";
  query.column = 0;
  query.range = KeyRange::Closed(1, 100);
  query.sigma = 0.5;
  query.require_sorted = true;
  query.order_column = 0;  // Same column.

  auto plans = optimizer.EnumeratePlans(query, 200);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 2u);
  for (const AccessPlan& plan : *plans) {
    if (plan.type == AccessPlan::Type::kIndexScan) {
      EXPECT_EQ(plan.sort_cost, 0.0);
    }
  }
}

TEST_F(OptimizerOrderTest, SelectivePredicateStillBeatsOrderIndex) {
  // With a very selective predicate, scanning t.key and sorting its tiny
  // output beats reading everything in t.key2 order.
  AccessPathOptimizer optimizer(&catalog_);
  Query query;
  query.table = "t";
  query.column = 0;
  query.range = KeyRange::Closed(1, 2);
  query.sigma = 0.005;
  query.require_sorted = true;
  query.order_column = 1;

  auto plan = optimizer.Choose(query, 300);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->type, AccessPlan::Type::kIndexScan);
  EXPECT_EQ(plan->index_name, "t.key");
}

TEST_F(OptimizerOrderTest, UnselectivePredicatePrefersOrderIndex) {
  // Reading the whole table anyway: avoid the sort by scanning in order,
  // given a buffer big enough that the full index scan doesn't thrash.
  AccessPathOptimizer optimizer(&catalog_);
  Query query;
  query.table = "t";
  query.column = 0;
  query.range = KeyRange::All();
  query.sigma = 1.0;
  query.require_sorted = true;
  query.order_column = 1;

  auto plan = optimizer.Choose(query, dataset_->num_pages());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->type, AccessPlan::Type::kIndexScan);
  EXPECT_EQ(plan->index_name, "t.key2");
}

}  // namespace
}  // namespace epfis
