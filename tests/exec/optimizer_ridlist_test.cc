#include <gtest/gtest.h>

#include <memory>

#include "epfis/lru_fit.h"
#include "exec/optimizer.h"
#include "exec/rid_list.h"
#include "workload/data_gen.h"

namespace epfis {
namespace {

class OptimizerRidListTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.num_records = 8000;
    spec.num_distinct = 200;
    spec.records_per_page = 20;
    spec.window_fraction = 0.8;  // Unclustered: RID sort should shine.
    spec.seed = 111;
    auto dataset = GenerateSynthetic(spec);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();

    ASSERT_TRUE(catalog_.RegisterTable("t", dataset_->table()).ok());
    ASSERT_TRUE(
        catalog_.RegisterIndex("t.key", "t", 0, dataset_->index()).ok());
    auto trace = dataset_->FullIndexPageTrace().value();
    catalog_.stats().Put(RunLruFit(trace, dataset_->num_pages(),
                                   dataset_->num_distinct(), "t.key")
                             .value());
  }

  Query MakeQuery(double sigma) {
    Query query;
    query.table = "t";
    query.column = 0;
    query.sigma = sigma;
    query.range = KeyRange::Closed(
        1, std::max<int64_t>(static_cast<int64_t>(sigma * 200), 1));
    return query;
  }

  std::unique_ptr<Dataset> dataset_;
  Catalog catalog_;
};

TEST_F(OptimizerRidListTest, DisabledByDefaultPerPaperSection2) {
  AccessPathOptimizer optimizer(&catalog_);
  auto plans = optimizer.EnumeratePlans(MakeQuery(0.3), 40);
  ASSERT_TRUE(plans.ok());
  for (const AccessPlan& plan : *plans) {
    EXPECT_NE(plan.type, AccessPlan::Type::kRidListFetch);
  }
}

TEST_F(OptimizerRidListTest, EnabledAddsOnePlanPerIndex) {
  OptimizerOptions options;
  options.consider_rid_list = true;
  AccessPathOptimizer optimizer(&catalog_, options);
  auto plans = optimizer.EnumeratePlans(MakeQuery(0.3), 40);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 3u);  // Table scan + index scan + rid fetch.
  int rid_plans = 0;
  for (const AccessPlan& plan : *plans) {
    if (plan.type == AccessPlan::Type::kRidListFetch) {
      ++rid_plans;
      EXPECT_EQ(plan.index_name, "t.key");
      EXPECT_GT(plan.estimated_fetches, 0.0);
    }
  }
  EXPECT_EQ(rid_plans, 1);
}

TEST_F(OptimizerRidListTest, RidPlanWinsOnUnclusteredSmallBuffer) {
  // Unclustered data + tiny buffer: an ordered index scan refetches
  // heavily, the table scan reads all T pages, the RID sort reads only the
  // distinct pages of the qualifying records.
  OptimizerOptions options;
  options.consider_rid_list = true;
  AccessPathOptimizer optimizer(&catalog_, options);
  auto plan = optimizer.Choose(MakeQuery(0.10), 8);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->type, AccessPlan::Type::kRidListFetch);

  // And its estimate is trustworthy: compare to an actual execution.
  Query query = MakeQuery(0.10);
  RidList list =
      RidList::FromIndexRange(*dataset_->index(), query.range).value();
  auto pool = dataset_->MakeDataPool(8);
  auto fetch = FetchRidList(*dataset_->table(), pool.get(), list).value();
  EXPECT_NEAR(plan->estimated_fetches,
              static_cast<double>(fetch.data_page_fetches),
              0.3 * static_cast<double>(fetch.data_page_fetches) + 10.0);
}

TEST_F(OptimizerRidListTest, SortRequirementPenalizesRidPlan) {
  OptimizerOptions options;
  options.consider_rid_list = true;
  AccessPathOptimizer optimizer(&catalog_, options);
  Query query = MakeQuery(0.10);
  query.require_sorted = true;
  auto plans = optimizer.EnumeratePlans(query, 8);
  ASSERT_TRUE(plans.ok());
  for (const AccessPlan& plan : *plans) {
    if (plan.type == AccessPlan::Type::kRidListFetch) {
      EXPECT_GT(plan.sort_cost, 0.0);
    }
    if (plan.type == AccessPlan::Type::kIndexScan) {
      EXPECT_EQ(plan.sort_cost, 0.0);  // Index delivers the order.
    }
  }
}

TEST_F(OptimizerRidListTest, ToStringNamesRidPlan) {
  OptimizerOptions options;
  options.consider_rid_list = true;
  AccessPathOptimizer optimizer(&catalog_, options);
  auto plans = optimizer.EnumeratePlans(MakeQuery(0.2), 8);
  ASSERT_TRUE(plans.ok());
  bool found = false;
  for (const AccessPlan& plan : *plans) {
    if (plan.type == AccessPlan::Type::kRidListFetch) {
      EXPECT_NE(plan.ToString().find("RidListFetch"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace epfis
