#include <gtest/gtest.h>

#include <memory>

#include "buffer/lru_simulator.h"
#include "exec/index_scan.h"
#include "exec/predicate.h"
#include "exec/table_scan.h"
#include "workload/data_gen.h"

namespace epfis {
namespace {

TEST(KeyRangeTest, ContainmentAndBounds) {
  KeyRange all = KeyRange::All();
  EXPECT_TRUE(all.Contains(INT64_MIN));
  EXPECT_TRUE(all.Contains(0));
  EXPECT_EQ(all.EffectiveLo(), INT64_MIN);
  EXPECT_EQ(all.EffectiveHi(), INT64_MAX);

  KeyRange closed = KeyRange::Closed(10, 20);
  EXPECT_FALSE(closed.Contains(9));
  EXPECT_TRUE(closed.Contains(10));
  EXPECT_TRUE(closed.Contains(20));
  EXPECT_FALSE(closed.Contains(21));
  EXPECT_EQ(closed.EffectiveLo(), 10);
  EXPECT_EQ(closed.EffectiveHi(), 20);

  KeyRange open{10, false, 20, false};
  EXPECT_FALSE(open.Contains(10));
  EXPECT_TRUE(open.Contains(11));
  EXPECT_TRUE(open.Contains(19));
  EXPECT_FALSE(open.Contains(20));
  EXPECT_EQ(open.EffectiveLo(), 11);
  EXPECT_EQ(open.EffectiveHi(), 19);

  EXPECT_EQ(closed.ToString(), "[10, 20]");
  EXPECT_EQ(open.ToString(), "(10, 20)");
  EXPECT_EQ(all.ToString(), "(-inf, +inf)");
}

TEST(SargableFilterTest, ExtremesAndDeterminism) {
  SargableFilter keep_all(1.0, 1);
  SargableFilter keep_none(0.0, 1);
  IndexEntry e{42, Rid{7, 3}};
  EXPECT_TRUE(keep_all.Keep(e));
  EXPECT_FALSE(keep_none.Keep(e));

  SargableFilter f1(0.5, 9), f2(0.5, 9), f3(0.5, 10);
  int agree = 0, diff = 0;
  for (int64_t k = 0; k < 500; ++k) {
    IndexEntry entry{k, Rid{static_cast<PageId>(k % 13),
                            static_cast<uint16_t>(k % 7)}};
    EXPECT_EQ(f1.Keep(entry), f2.Keep(entry));
    if (f1.Keep(entry) == f3.Keep(entry)) {
      ++agree;
    } else {
      ++diff;
    }
  }
  EXPECT_GT(diff, 50);  // Different seeds pick different subsets.
  (void)agree;
}

TEST(SargableFilterTest, SelectivityApproximatelyRespected) {
  for (double s : {0.1, 0.25, 0.5, 0.9}) {
    SargableFilter filter(s, 77);
    int kept = 0;
    const int kTotal = 20000;
    for (int i = 0; i < kTotal; ++i) {
      IndexEntry e{i, Rid{static_cast<PageId>(i / 40),
                          static_cast<uint16_t>(i % 40)}};
      if (filter.Keep(e)) ++kept;
    }
    EXPECT_NEAR(kept / static_cast<double>(kTotal), s, 0.02) << "s=" << s;
  }
}

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.num_records = 4000;
    spec.num_distinct = 200;
    spec.records_per_page = 20;
    spec.window_fraction = 0.3;  // Noticeably unclustered.
    spec.seed = 51;
    auto dataset = GenerateSynthetic(spec);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
  }

  std::unique_ptr<Dataset> dataset_;
};

TEST_F(ExecTest, TableScanFetchesEveryPageOnce) {
  auto pool = dataset_->MakeDataPool(5);  // Tiny pool: still T fetches.
  auto result =
      RunTableScan(*dataset_->table(), pool.get(), KeyRange::Closed(50, 90), 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pages_fetched, dataset_->num_pages());
  EXPECT_EQ(result->records_scanned, dataset_->num_records());
  EXPECT_EQ(result->records_qualifying, dataset_->RecordsInRange(50, 90));
}

TEST_F(ExecTest, TableScanBufferSizeIrrelevant) {
  auto small = dataset_->MakeDataPool(2);
  auto large = dataset_->MakeDataPool(1000);
  auto r1 = RunTableScan(*dataset_->table(), small.get(), KeyRange::All(), 0);
  auto r2 = RunTableScan(*dataset_->table(), large.get(), KeyRange::All(), 0);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->pages_fetched, r2->pages_fetched);
}

TEST_F(ExecTest, TableScanRejectsBadColumn) {
  auto pool = dataset_->MakeDataPool(10);
  EXPECT_FALSE(
      RunTableScan(*dataset_->table(), pool.get(), KeyRange::All(), 9).ok());
}

TEST_F(ExecTest, IndexScanCountsMatchDatasetBookkeeping) {
  auto pool = dataset_->MakeDataPool(50);
  KeyRange range = KeyRange::Closed(10, 60);
  auto result = RunIndexScan(*dataset_->index(), *dataset_->table(),
                             pool.get(), range);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entries_examined, dataset_->RecordsInRange(10, 60));
  EXPECT_EQ(result->records_fetched, result->entries_examined);
  EXPECT_GE(result->data_page_fetches, result->data_pages_accessed);
  EXPECT_LE(result->data_pages_accessed, dataset_->num_pages());
}

TEST_F(ExecTest, IndexScanFetchesMatchLruSimulationOfTrace) {
  // The real buffer-pool execution and the trace-based LRU simulation must
  // report the same fetch count: this ties the measurement path used by
  // the harness to the actual system behavior.
  KeyRange range = KeyRange::Closed(20, 160);
  auto trace = CollectScanTrace(*dataset_->index(), range);
  ASSERT_TRUE(trace.ok());
  for (size_t pool_size : {3u, 10u, 40u, 200u}) {
    auto pool = dataset_->MakeDataPool(pool_size);
    auto result = RunIndexScan(*dataset_->index(), *dataset_->table(),
                               pool.get(), range);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->data_page_fetches,
              CountLruFetches(*trace, pool_size))
        << "pool=" << pool_size;
  }
}

TEST_F(ExecTest, IndexScanTraceCollection) {
  auto pool = dataset_->MakeDataPool(50);
  IndexScanOptions options;
  options.collect_trace = true;
  KeyRange range = KeyRange::Closed(1, 30);
  auto result = RunIndexScan(*dataset_->index(), *dataset_->table(),
                             pool.get(), range, nullptr, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->page_trace.size(), result->records_fetched);
  auto expected = CollectScanTrace(*dataset_->index(), range);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(result->page_trace, *expected);
}

TEST_F(ExecTest, IndexScanWithSargableFilterFetchesSubset) {
  auto pool_all = dataset_->MakeDataPool(100);
  auto pool_some = dataset_->MakeDataPool(100);
  KeyRange range = KeyRange::Closed(1, 200);
  SargableFilter filter(0.2, 99);
  auto all = RunIndexScan(*dataset_->index(), *dataset_->table(),
                          pool_all.get(), range);
  auto some = RunIndexScan(*dataset_->index(), *dataset_->table(),
                           pool_some.get(), range, &filter);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(some.ok());
  EXPECT_EQ(some->entries_examined, all->entries_examined);
  EXPECT_LT(some->records_fetched, all->records_fetched);
  EXPECT_LE(some->data_page_fetches, all->data_page_fetches);
  EXPECT_NEAR(static_cast<double>(some->records_fetched) /
                  static_cast<double>(all->records_fetched),
              0.2, 0.03);
}

TEST_F(ExecTest, ClusteredScanFetchesEqualAccesses) {
  // A clustered dataset: F == A regardless of buffer size (paper §2).
  SyntheticSpec spec;
  spec.num_records = 2000;
  spec.num_distinct = 100;
  spec.records_per_page = 20;
  spec.window_fraction = 0.0;
  spec.noise = 0.0;
  spec.seed = 52;
  auto clustered = GenerateSynthetic(spec);
  ASSERT_TRUE(clustered.ok());
  for (size_t pool_size : {1u, 5u, 100u}) {
    auto pool = (*clustered)->MakeDataPool(pool_size);
    auto result = RunIndexScan(*(*clustered)->index(), *(*clustered)->table(),
                               pool.get(), KeyRange::Closed(10, 50));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->data_page_fetches, result->data_pages_accessed)
        << "pool=" << pool_size;
  }
}

TEST_F(ExecTest, EmptyRangeScansNothing) {
  auto pool = dataset_->MakeDataPool(10);
  auto result = RunIndexScan(*dataset_->index(), *dataset_->table(),
                             pool.get(), KeyRange::Closed(500, 600));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entries_examined, 0u);
  EXPECT_EQ(result->data_page_fetches, 0u);
}

}  // namespace
}  // namespace epfis
