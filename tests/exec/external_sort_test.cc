#include "exec/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "workload/data_gen.h"

namespace epfis {
namespace {

class ExternalSortTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.num_records = 10000;
    spec.num_distinct = 500;
    spec.records_per_page = 20;  // T = 500 pages.
    spec.window_fraction = 1.0;  // Scrambled: sorting has work to do.
    spec.seed = 131;
    auto dataset = GenerateSynthetic(spec);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
  }

  std::vector<int64_t> ExpectedSortedKeys(const KeyRange& range) {
    std::vector<int64_t> keys;
    const auto& counts = dataset_->key_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      int64_t key = static_cast<int64_t>(i) + 1;
      if (!range.Contains(key)) continue;
      keys.insert(keys.end(), counts[i], key);
    }
    return keys;
  }

  std::unique_ptr<Dataset> dataset_;
};

TEST_F(ExternalSortTest, ValidatesArguments) {
  auto pool = dataset_->MakeDataPool(16);
  EXPECT_FALSE(ExternalSortTable(*dataset_->table(), pool.get(),
                                 KeyRange::All(), 0, 0)
                   .ok());
  EXPECT_FALSE(ExternalSortTable(*dataset_->table(), pool.get(),
                                 KeyRange::All(), 7, 4)
                   .ok());
}

TEST_F(ExternalSortTest, InMemoryWhenItFits) {
  auto pool = dataset_->MakeDataPool(16);
  // 10000 keys need 10000*8/4096 ~= 20 scratch pages; give 64.
  auto result = ExternalSortTable(*dataset_->table(), pool.get(),
                                  KeyRange::All(), 0, 64);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records, 10000u);
  EXPECT_EQ(result->scratch_pages_written, 0u);
  EXPECT_EQ(result->scratch_pages_read, 0u);
  EXPECT_EQ(result->runs, 1u);
  EXPECT_EQ(result->sorted_keys, ExpectedSortedKeys(KeyRange::All()));
}

TEST_F(ExternalSortTest, SpillsAndMergesCorrectly) {
  auto pool = dataset_->MakeDataPool(16);
  // 2 scratch pages of work memory -> 1024 keys per run -> ~10 runs.
  auto result = ExternalSortTable(*dataset_->table(), pool.get(),
                                  KeyRange::All(), 0, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records, 10000u);
  EXPECT_GE(result->runs, 9u);
  EXPECT_GT(result->scratch_pages_written, 0u);
  EXPECT_EQ(result->scratch_pages_written, result->scratch_pages_read);
  EXPECT_EQ(result->sorted_keys, ExpectedSortedKeys(KeyRange::All()));
}

TEST_F(ExternalSortTest, RangeRestrictsInput) {
  auto pool = dataset_->MakeDataPool(16);
  KeyRange range = KeyRange::Closed(100, 200);
  auto result = ExternalSortTable(*dataset_->table(), pool.get(), range, 0,
                                  2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records, dataset_->RecordsInRange(100, 200));
  EXPECT_EQ(result->sorted_keys, ExpectedSortedKeys(range));
}

TEST_F(ExternalSortTest, EmptyRangeSortsNothing) {
  auto pool = dataset_->MakeDataPool(16);
  auto result = ExternalSortTable(*dataset_->table(), pool.get(),
                                  KeyRange::Closed(900, 999), 0, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records, 0u);
  EXPECT_EQ(result->runs, 0u);
  EXPECT_TRUE(result->sorted_keys.empty());
}

TEST_F(ExternalSortTest, MeasuredIoFactorNearModeledTwo) {
  // The optimizer models a sort as sort_io_factor (default 2.0) extra I/Os
  // per input page: one write + one read of the spilled data. Measure it.
  auto pool = dataset_->MakeDataPool(16);
  auto result = ExternalSortTable(*dataset_->table(), pool.get(),
                                  KeyRange::All(), 0, 2);
  ASSERT_TRUE(result.ok());
  // Keys are 8 of the ~200 bytes per record, so scratch pages are ~1/25 of
  // the input pages — scale accordingly: factor per *scratch-resident*
  // page is exactly 2 (write once, read once).
  uint64_t scratch_resident =
      (result->records * sizeof(int64_t) + kPageSize - 1) / kPageSize;
  double factor = static_cast<double>(result->scratch_pages_written +
                                      result->scratch_pages_read) /
                  static_cast<double>(scratch_resident);
  EXPECT_NEAR(factor, 2.0, 0.2);
}

TEST_F(ExternalSortTest, InputPagesReadExactlyOnce) {
  auto pool = dataset_->MakeDataPool(8);
  uint64_t before = pool->stats().fetches;
  auto result = ExternalSortTable(*dataset_->table(), pool.get(),
                                  KeyRange::All(), 0, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(pool->stats().fetches - before, dataset_->num_pages());
}

}  // namespace
}  // namespace epfis
