#include "catalog/histogram.h"

#include <gtest/gtest.h>

#include <memory>

#include "catalog/catalog.h"
#include "epfis/lru_fit.h"
#include "exec/optimizer.h"
#include "util/random.h"
#include "util/zipf.h"
#include "workload/data_gen.h"

namespace epfis {
namespace {

TEST(HistogramTest, RejectsBadInput) {
  EXPECT_FALSE(EquiDepthHistogram::Build({1, 2, 3}, 0).ok());
  EXPECT_FALSE(EquiDepthHistogram::Build({}, 4).ok());
  EXPECT_FALSE(EquiDepthHistogram::Build({0, 0}, 4).ok());
}

TEST(HistogramTest, UniformCountsGiveBalancedBuckets) {
  std::vector<uint64_t> counts(100, 10);  // 1000 records, 100 keys.
  auto hist = EquiDepthHistogram::Build(counts, 10);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->total_records(), 1000u);
  ASSERT_EQ(hist->buckets().size(), 10u);
  for (const auto& bucket : hist->buckets()) {
    EXPECT_EQ(bucket.count, 100u);
    EXPECT_EQ(bucket.distinct, 10u);
  }
}

TEST(HistogramTest, BucketsPartitionTheDomain) {
  Rng rng(3);
  std::vector<uint64_t> counts(500);
  for (auto& c : counts) c = 1 + rng.NextBounded(50);
  auto hist = EquiDepthHistogram::Build(counts, 12);
  ASSERT_TRUE(hist.ok());
  uint64_t total = 0;
  int64_t prev_hi = 0;
  for (const auto& bucket : hist->buckets()) {
    EXPECT_GT(bucket.lo, prev_hi);
    EXPECT_LE(bucket.lo, bucket.hi);
    total += bucket.count;
    prev_hi = bucket.hi;
  }
  EXPECT_EQ(total, hist->total_records());
}

TEST(HistogramTest, ExactOnFullAndEmptyRanges) {
  std::vector<uint64_t> counts(100, 7);
  auto hist = EquiDepthHistogram::Build(counts, 8);
  ASSERT_TRUE(hist.ok());
  EXPECT_NEAR(hist->EstimateRecords(KeyRange::All()), 700.0, 1e-9);
  EXPECT_DOUBLE_EQ(hist->EstimateSelectivity(KeyRange::All()), 1.0);
  EXPECT_DOUBLE_EQ(hist->EstimateRecords(KeyRange::Closed(500, 600)), 0.0);
  EXPECT_DOUBLE_EQ(hist->EstimateRecords(KeyRange::Closed(50, 10)), 0.0);
}

TEST(HistogramTest, RangeEstimateCloseOnUniformData) {
  std::vector<uint64_t> counts(1000, 5);
  auto hist = EquiDepthHistogram::Build(counts, 20);
  ASSERT_TRUE(hist.ok());
  for (auto [lo, hi] : {std::pair<int64_t, int64_t>{1, 100},
                        {250, 300},
                        {990, 1000},
                        {37, 612}}) {
    double expected = 5.0 * static_cast<double>(hi - lo + 1);
    EXPECT_NEAR(hist->EstimateRecords(KeyRange::Closed(lo, hi)), expected,
                0.05 * expected + 6.0)
        << lo << ".." << hi;
  }
}

TEST(HistogramTest, SkewedDataStillBoundedError) {
  auto zipf = ZipfDistribution::Make(500, 0.86);
  ASSERT_TRUE(zipf.ok());
  std::vector<uint64_t> counts = zipf->ApportionCounts(50000);
  auto hist = EquiDepthHistogram::Build(counts, 25);
  ASSERT_TRUE(hist.ok());
  // Check several ranges against exact answers.
  auto exact = [&](int64_t lo, int64_t hi) {
    uint64_t total = 0;
    for (int64_t k = lo; k <= hi; ++k) total += counts[k - 1];
    return static_cast<double>(total);
  };
  for (auto [lo, hi] : {std::pair<int64_t, int64_t>{1, 10},
                        {1, 100},
                        {200, 400},
                        {450, 500}}) {
    double e = exact(lo, hi);
    double est = hist->EstimateRecords(KeyRange::Closed(lo, hi));
    // Equi-depth keeps heavy keys in narrow buckets: relative error on
    // ranges spanning at least one bucket stays modest.
    EXPECT_NEAR(est, e, 0.30 * e + 100.0) << lo << ".." << hi;
  }
}

TEST(HistogramTest, EqualitySelectivityUsesBucketDistinct) {
  std::vector<uint64_t> counts(10, 100);  // 1000 records, 10 keys.
  auto hist = EquiDepthHistogram::Build(counts, 2);
  ASSERT_TRUE(hist.ok());
  EXPECT_NEAR(hist->EstimateEqualitySelectivity(3), 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(hist->EstimateEqualitySelectivity(99), 0.0);
}

TEST(HistogramTest, SerializationRoundTrip) {
  Rng rng(9);
  std::vector<uint64_t> counts(200);
  for (auto& c : counts) c = 1 + rng.NextBounded(20);
  auto hist = EquiDepthHistogram::Build(counts, 16);
  ASSERT_TRUE(hist.ok());
  auto restored = EquiDepthHistogram::FromString(hist->ToString());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->total_records(), hist->total_records());
  ASSERT_EQ(restored->buckets().size(), hist->buckets().size());
  for (auto [lo, hi] :
       {std::pair<int64_t, int64_t>{1, 50}, {60, 61}, {100, 200}}) {
    EXPECT_DOUBLE_EQ(restored->EstimateRecords(KeyRange::Closed(lo, hi)),
                     hist->EstimateRecords(KeyRange::Closed(lo, hi)));
  }
}

TEST(HistogramTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(EquiDepthHistogram::FromString("nope").ok());
  EXPECT_FALSE(EquiDepthHistogram::FromString("histogram total=5\n").ok());
  EXPECT_FALSE(
      EquiDepthHistogram::FromString("histogram total=5\n1 2 3 0\n").ok());
  // Counts not summing to total.
  EXPECT_FALSE(
      EquiDepthHistogram::FromString("histogram total=5\n1 2 3 2\n").ok());
  // Overlapping buckets.
  EXPECT_FALSE(EquiDepthHistogram::FromString(
                   "histogram total=6\n1 5 3 2\n4 9 3 2\n")
                   .ok());
}

TEST(HistogramOptimizerTest, EstimateSigmaDrivesPlanChoice) {
  SyntheticSpec spec;
  spec.num_records = 10000;
  spec.num_distinct = 200;
  spec.records_per_page = 20;
  spec.window_fraction = 0.4;
  spec.seed = 121;
  auto dataset = GenerateSynthetic(spec);
  ASSERT_TRUE(dataset.ok());

  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("t", (*dataset)->table()).ok());
  ASSERT_TRUE(
      catalog.RegisterIndex("t.key", "t", 0, (*dataset)->index()).ok());
  auto trace = (*dataset)->FullIndexPageTrace().value();
  catalog.stats().Put(RunLruFit(trace, (*dataset)->num_pages(),
                                (*dataset)->num_distinct(), "t.key")
                          .value());
  auto hist = EquiDepthHistogram::Build((*dataset)->key_counts(), 20);
  ASSERT_TRUE(hist.ok());
  ASSERT_TRUE(catalog.PutHistogram("t.key", *hist).ok());

  AccessPathOptimizer optimizer(&catalog);
  Query query;
  query.table = "t";
  query.column = 0;
  query.estimate_sigma = true;

  // Narrow range: histogram should yield a small sigma -> index plan.
  query.range = KeyRange::Closed(1, 2);
  auto narrow = optimizer.Choose(query, 100);
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow->type, AccessPlan::Type::kIndexScan);

  // Whole domain: sigma ~= 1 on unclustered data with tiny buffer ->
  // table scan.
  query.range = KeyRange::All();
  auto wide = optimizer.Choose(query, 12);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->type, AccessPlan::Type::kTableScan);

  // Histogram sigma close to truth for a mid-size range.
  query.range = KeyRange::Closed(10, 60);
  double est_sigma = hist->EstimateSelectivity(query.range);
  double true_sigma =
      static_cast<double>((*dataset)->RecordsInRange(10, 60)) / 10000.0;
  EXPECT_NEAR(est_sigma, true_sigma, 0.15 * true_sigma + 0.01);
}

TEST(HistogramOptimizerTest, EstimateSigmaWithoutHistogramFails) {
  SyntheticSpec spec;
  spec.num_records = 2000;
  spec.num_distinct = 50;
  spec.records_per_page = 20;
  spec.seed = 5;
  auto dataset = GenerateSynthetic(spec);
  ASSERT_TRUE(dataset.ok());
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("t", (*dataset)->table()).ok());
  ASSERT_TRUE(
      catalog.RegisterIndex("t.key", "t", 0, (*dataset)->index()).ok());
  auto trace = (*dataset)->FullIndexPageTrace().value();
  catalog.stats().Put(RunLruFit(trace, (*dataset)->num_pages(),
                                (*dataset)->num_distinct(), "t.key")
                          .value());
  AccessPathOptimizer optimizer(&catalog);
  Query query;
  query.table = "t";
  query.column = 0;
  query.estimate_sigma = true;
  query.range = KeyRange::Closed(1, 5);
  EXPECT_FALSE(optimizer.Choose(query, 50).ok());
}

TEST(HistogramCatalogTest, PutRequiresRegisteredIndex) {
  Catalog catalog;
  auto hist = EquiDepthHistogram::Build({5, 5}, 1);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(catalog.PutHistogram("ghost", *hist).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace epfis
