// The binary mmap-able catalog format (v3): lossless round-trips against
// the v2 text format, structural validation, per-entry corruption
// quarantine, and the zero-copy snapshot open.

#include "catalog/catalog_v3.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "catalog/stats_catalog.h"
#include "epfis/est_io.h"

namespace epfis {
namespace {

IndexStats MakeStats(const std::string& name, uint64_t pages,
                     double clustering) {
  IndexStats stats;
  stats.index_name = name;
  stats.table_pages = pages;
  stats.table_records = pages * 40;
  stats.distinct_keys = pages / 2;
  stats.pages_accessed = pages;
  stats.b_min = 12;
  stats.b_max = pages;
  stats.f_min = pages * 30;
  stats.clustering = clustering;
  stats.sample_rate = 0.25;
  stats.sampled_refs = pages * 10;
  double p = static_cast<double>(pages);
  stats.fpf = PiecewiseLinear::FromKnots({{12, 30.0 * p},
                                          {p * 0.1, 15.0 * p},
                                          {p * 0.3, 6.0 * p},
                                          {p, 1.0 * p}})
                  .value();
  return stats;
}

void ExpectStatsEqual(const IndexStats& a, const IndexStats& b) {
  EXPECT_EQ(a.index_name, b.index_name);
  EXPECT_EQ(a.table_pages, b.table_pages);
  EXPECT_EQ(a.table_records, b.table_records);
  EXPECT_EQ(a.distinct_keys, b.distinct_keys);
  EXPECT_EQ(a.pages_accessed, b.pages_accessed);
  EXPECT_EQ(a.b_min, b.b_min);
  EXPECT_EQ(a.b_max, b.b_max);
  EXPECT_EQ(a.f_min, b.f_min);
  EXPECT_EQ(a.clustering, b.clustering);  // Bit-exact, no tolerance.
  EXPECT_EQ(a.sample_rate, b.sample_rate);
  EXPECT_EQ(a.sampled_refs, b.sampled_refs);
  ASSERT_EQ(a.fpf.has_value(), b.fpf.has_value());
  if (a.fpf.has_value()) {
    const auto& ka = a.fpf->knots();
    const auto& kb = b.fpf->knots();
    ASSERT_EQ(ka.size(), kb.size());
    for (size_t i = 0; i < ka.size(); ++i) {
      EXPECT_EQ(ka[i].x, kb[i].x);
      EXPECT_EQ(ka[i].y, kb[i].y);
    }
  }
}

// Offset of the first entry's packed fixed fields in an encoded image:
// 64-byte header, then one 40-byte index record per entry.
size_t FirstFixedOffset(size_t entry_count) { return 64 + entry_count * 40; }

TEST(CatalogV3Test, EncodeDecodeRoundTripsLosslessly) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("aaa.key", 1000, 0.3));
  catalog.Put(MakeStats("bbb.key", 5000, 0.85));
  IndexStats curveless;
  curveless.index_name = "curveless.key";
  curveless.table_pages = 77;
  curveless.table_records = 770;
  catalog.Put(curveless);

  StatsCatalog restored;
  ASSERT_TRUE(restored.LoadFromString(catalog.SaveToStringV3()).ok());
  ASSERT_EQ(restored.size(), 3u);
  for (const std::string& name : catalog.IndexNames()) {
    SCOPED_TRACE(name);
    auto original = catalog.Get(name);
    auto loaded = restored.Get(name);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(loaded.ok());
    ExpectStatsEqual(*original, *loaded);
  }
}

TEST(CatalogV3Test, V2ToV3ConversionIsLossless) {
  // The `catalog convert` path: entries written as v2 text, reloaded,
  // rewritten as v3 binary, reloaded again — estimates must be
  // bit-identical across all three generations.
  StatsCatalog original;
  original.Put(MakeStats("orders.key", 1250, 0.4));
  original.Put(MakeStats("lines.key", 800, 0.0));

  StatsCatalog from_v2;
  ASSERT_TRUE(from_v2.LoadFromString(original.SaveToString()).ok());
  StatsCatalog from_v3;
  ASSERT_TRUE(from_v3.LoadFromString(from_v2.SaveToStringV3()).ok());

  for (const std::string& name : original.IndexNames()) {
    SCOPED_TRACE(name);
    ExpectStatsEqual(*from_v2.Get(name), *from_v3.Get(name));
    for (double sigma : {0.01, 0.2, 1.0}) {
      for (uint64_t b : {20ULL, 300ULL, 900ULL}) {
        EXPECT_EQ(
            EstIo::Estimate(*original.Get(name), {sigma, 1.0, b}).value(),
            EstIo::Estimate(*from_v3.Get(name), {sigma, 1.0, b}).value());
      }
    }
  }
}

TEST(CatalogV3Test, LoadFromFileAutodetectsBinaryFormat) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("auto.key", 500, 0.5));
  std::string path = testing::TempDir() + "/epfis_v3_autodetect.cat";
  ASSERT_TRUE(catalog.SaveToFileV3(path).ok());

  StatsCatalog loaded;
  auto report = loaded.RecoverFromFile(path);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->format_version, 3);
  EXPECT_EQ(report->entries_loaded, 1u);
  EXPECT_EQ(report->entries_quarantined, 0u);
  ExpectStatsEqual(*catalog.Get("auto.key"), *loaded.Get("auto.key"));
  std::remove(path.c_str());
}

TEST(CatalogV3Test, BadMagicIsCorruption) {
  StatsCatalog catalog;
  EXPECT_EQ(catalog.LoadFromString("EPFSCATX garbage").code(),
            StatusCode::kCorruption);
}

TEST(CatalogV3Test, CrossEndianImageIsClearCorruption) {
  // Byte-craft the file an opposite-endianness host would have written:
  // the magic is a char string (endianness-neutral), but every multi-byte
  // header field lands byte-swapped. Regression: the endian tag used to be
  // checked *after* the version field, so such a file surfaced as
  // "unsupported version 50331648" (3 byte-swapped) — noise that sent
  // operators hunting a nonexistent version skew instead of the real
  // problem. The tag must be checked first and the error must say so.
  StatsCatalog catalog;
  catalog.Put(MakeStats("endian.key", 600, 0.4));
  std::string image = catalog.SaveToStringV3();
  // Header layout: magic[8], version u32 @8, endian u32 @12.
  std::reverse(image.begin() + 8, image.begin() + 12);
  std::reverse(image.begin() + 12, image.begin() + 16);

  StatsCatalog strict;
  Status status = strict.LoadFromString(image);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("foreign byte order"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("opposite-endianness"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(status.message().find("version"), std::string::npos)
      << "cross-endian file misreported as a version mismatch: "
      << status.ToString();

  // Structural, not per-entry: recovery mode refuses the file too.
  StatsCatalog recovering;
  EXPECT_FALSE(recovering.RecoverFromString(image).ok());

  // The zero-copy open path reports the same verdict.
  std::string path = testing::TempDir() + "/epfis_v3_cross_endian.cat";
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(image.data(), 1, image.size(), f);
    fclose(f);
  }
  auto snapshot = OpenCatalogSnapshotV3(path);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), StatusCode::kCorruption);
  EXPECT_NE(snapshot.status().message().find("foreign byte order"),
            std::string::npos)
      << snapshot.status().ToString();
  std::remove(path.c_str());

  // A damaged tag that matches neither byte order is reported as damage,
  // not as a foreign writer.
  std::string damaged = catalog.SaveToStringV3();
  damaged[12] ^= 0x55;
  StatsCatalog loaded;
  Status damaged_status = loaded.LoadFromString(damaged);
  EXPECT_EQ(damaged_status.code(), StatusCode::kCorruption);
  EXPECT_NE(damaged_status.message().find("endian tag damaged"),
            std::string::npos)
      << damaged_status.ToString();
}

TEST(CatalogV3Test, TruncationIsStructuralCorruption) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("t.key", 300, 0.2));
  std::string image = catalog.SaveToStringV3();
  // A torn write (file shorter than the header claims) must fail even in
  // recovery mode: nothing in a half-written file can be trusted.
  std::string torn = image.substr(0, image.size() - 7);
  StatsCatalog loaded;
  EXPECT_EQ(loaded.LoadFromString(torn).code(), StatusCode::kCorruption);
  EXPECT_FALSE(loaded.RecoverFromString(torn).ok());
}

TEST(CatalogV3Test, HeaderBitRotIsStructuralCorruption) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("h.key", 300, 0.2));
  std::string image = catalog.SaveToStringV3();
  image[20] ^= 0x40;  // Inside the header's entry_count field.
  StatsCatalog loaded;
  EXPECT_EQ(loaded.LoadFromString(image).code(), StatusCode::kCorruption);
}

TEST(CatalogV3Test, FlippedPayloadByteQuarantinesOnlyThatEntry) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("aaa.key", 1000, 0.3));
  catalog.Put(MakeStats("bbb.key", 5000, 0.85));
  std::string image = catalog.SaveToStringV3();
  // Corrupt the first entry's fixed fields (entries are encoded in name
  // order, so this is aaa.key's table_pages).
  image[FirstFixedOffset(2) + 2] ^= 0xFF;

  // Strict load refuses the whole file...
  StatsCatalog strict;
  EXPECT_EQ(strict.LoadFromString(image).code(), StatusCode::kCorruption);

  // ...recovery loads bbb and quarantines aaa with a checksum reason.
  StatsCatalog recovered;
  auto report = recovered.RecoverFromString(image);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->format_version, 3);
  EXPECT_EQ(report->entries_loaded, 1u);
  EXPECT_EQ(report->entries_quarantined, 1u);
  EXPECT_EQ(report->checksum_failures, 1u);
  EXPECT_TRUE(recovered.IsQuarantined("aaa.key"));
  EXPECT_EQ(recovered.Get("aaa.key").status().code(),
            StatusCode::kCorruption);
  ExpectStatsEqual(*catalog.Get("bbb.key"), *recovered.Get("bbb.key"));
}

TEST(CatalogV3Test, ZeroCopySnapshotMatchesMaterializedLoad) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("zc1.key", 1000, 0.3));
  catalog.Put(MakeStats("zc2.key", 2400, 0.7));
  std::string path = testing::TempDir() + "/epfis_v3_zerocopy.cat";
  ASSERT_TRUE(catalog.SaveToFileV3(path).ok());

  auto snapshot_or = OpenCatalogSnapshotV3(path, 42);
  ASSERT_TRUE(snapshot_or.ok()) << snapshot_or.status().ToString();
  std::shared_ptr<const CatalogSnapshot> snapshot = *snapshot_or;
  EXPECT_EQ(snapshot->generation(), 42u);
  ASSERT_EQ(snapshot->size(), 2u);

  for (const std::string& name : catalog.IndexNames()) {
    SCOPED_TRACE(name);
    // Materializing Get out of the mapped snapshot equals the original.
    auto from_map = snapshot->Get(name);
    ASSERT_TRUE(from_map.ok());
    ExpectStatsEqual(*catalog.Get(name), *from_map);
    // And estimates served straight off the mapping are bit-identical to
    // estimates computed from the owned in-memory entry.
    TableShape shape{from_map->table_pages, from_map->table_records};
    for (double sigma : {0.02, 0.5, 1.0}) {
      for (uint64_t b : {15ULL, 500ULL, 2000ULL}) {
        auto served = EstIo::EstimateFromCatalog(*snapshot, name,
                                                 {sigma, 1.0, b}, shape);
        ASSERT_TRUE(served.ok());
        EXPECT_EQ(served->source, EstimateSource::kLruFitCurve);
        EXPECT_EQ(served->fetches,
                  EstIo::Estimate(*catalog.Get(name), {sigma, 1.0, b})
                      .value());
      }
    }
  }
  std::remove(path.c_str());
}

TEST(CatalogV3Test, ZeroCopySnapshotQuarantinesCorruptEntry) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("aaa.key", 1000, 0.3));
  catalog.Put(MakeStats("bbb.key", 5000, 0.85));
  std::string image = catalog.SaveToStringV3();
  image[FirstFixedOffset(2) + 2] ^= 0xFF;  // aaa.key's fixed fields.
  std::string path = testing::TempDir() + "/epfis_v3_quarantine.cat";
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(image.data(), 1, image.size(), f);
    fclose(f);
  }

  auto snapshot_or = OpenCatalogSnapshotV3(path);
  ASSERT_TRUE(snapshot_or.ok());
  std::shared_ptr<const CatalogSnapshot> snapshot = *snapshot_or;
  EXPECT_TRUE(snapshot->IsQuarantined("aaa.key"));
  EXPECT_EQ(snapshot->Get("aaa.key").status().code(),
            StatusCode::kCorruption);
  EXPECT_TRUE(snapshot->Get("bbb.key").ok());

  // Serving from the quarantined entry degrades with Corruption
  // provenance instead of trusting mapped bytes that failed their CRC.
  TableShape shape{1000, 40000};
  auto est = EstIo::EstimateFromCatalog(*snapshot, "aaa.key",
                                        {0.1, 1.0, 200}, shape);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->source, EstimateSource::kFormulaFallback);
  EXPECT_EQ(est->stats_status.code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CatalogV3Test, OpenSnapshotMissingFileIsIoError) {
  auto snapshot = OpenCatalogSnapshotV3("/nonexistent/epfis_v3.cat");
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), StatusCode::kIoError);
}

TEST(CatalogV3Test, SniffMagicMatchesOnlyV3Images) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("s.key", 400, 0.5));
  std::string v3 = catalog.SaveToStringV3();
  std::string v2 = catalog.SaveToString();
  EXPECT_TRUE(CatalogV3::SniffMagic(v3.data(), v3.size()));
  EXPECT_FALSE(CatalogV3::SniffMagic(v2.data(), v2.size()));
  EXPECT_FALSE(CatalogV3::SniffMagic(v3.data(), 4));  // Too short.
}

}  // namespace
}  // namespace epfis
