#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/stats_catalog.h"
#include "epfis/fpf_curve.h"
#include "util/fault.h"

namespace epfis {
namespace {

IndexStats MakeStats(const std::string& name, uint64_t pages) {
  IndexStats s;
  s.index_name = name;
  s.table_pages = pages;
  s.table_records = pages * 10;
  s.distinct_keys = pages * 5;
  s.pages_accessed = pages;
  s.b_min = 12;
  s.b_max = pages;
  s.f_min = pages * 3;
  s.clustering = 0.25;
  auto curve = PiecewiseLinear::FromKnots(
      {{12.0, static_cast<double>(pages) * 3.0},
       {static_cast<double>(pages), static_cast<double>(pages)}});
  s.fpf = std::move(curve).value();
  return s;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class StatsCatalogRobustnessTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    // Per-test directory: ctest runs each TEST as its own process, and
    // parallel processes sharing one scratch dir would race on remove_all.
    dir_ = testing::TempDir() + "/epfis_catalog_robust_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  bool HasTmpLeak() const {
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.path().extension() == ".tmp") return true;
    }
    return false;
  }

  std::string dir_;
};

TEST_F(StatsCatalogRobustnessTest, V2RoundTripCarriesHeaderAndChecksums) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("ix_a", 100));
  catalog.Put(MakeStats("ix_b", 200));
  std::string text = catalog.SaveToString();
  EXPECT_EQ(text.rfind("[epfis-stats-catalog-v2]", 0), 0u);
  EXPECT_NE(text.find("[end crc="), std::string::npos);
  EXPECT_EQ(text.find("[end]\n"), std::string::npos);

  StatsCatalog loaded;
  ASSERT_TRUE(loaded.LoadFromString(text).ok());
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.Get("ix_a").ok());
  EXPECT_TRUE(loaded.Get("ix_b").ok());
}

TEST_F(StatsCatalogRobustnessTest, ChecksumMismatchFailsStrictLoad) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("ix_a", 100));
  std::string text = catalog.SaveToString();
  // Silent bit rot in a field value, frame intact.
  size_t at = text.find("table_pages=100");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 15, "table_pages=999");

  StatsCatalog loaded;
  Status status = loaded.LoadFromString(text);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(loaded.size(), 0u);
}

TEST_F(StatsCatalogRobustnessTest, RecoverQuarantinesCorruptEntryOnly) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("ix_bad", 100));
  catalog.Put(MakeStats("ix_good", 200));
  std::string text = catalog.SaveToString();
  size_t at = text.find("table_pages=100");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 15, "table_pages=999");

  StatsCatalog loaded;
  auto report = loaded.RecoverFromString(text);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->format_version, 2);
  EXPECT_EQ(report->entries_loaded, 1u);
  EXPECT_EQ(report->entries_quarantined, 1u);
  EXPECT_EQ(report->checksum_failures, 1u);
  ASSERT_EQ(report->quarantine_reasons.size(), 1u);
  EXPECT_NE(report->quarantine_reasons[0].find("checksum"),
            std::string::npos);

  EXPECT_TRUE(loaded.Get("ix_good").ok());
  EXPECT_TRUE(loaded.IsQuarantined("ix_bad"));
  Status bad = loaded.Get("ix_bad").status();
  EXPECT_EQ(bad.code(), StatusCode::kCorruption);
  // A fresh Put (statistics refresh) clears the quarantine.
  loaded.Put(MakeStats("ix_bad", 100));
  EXPECT_FALSE(loaded.IsQuarantined("ix_bad"));
  EXPECT_TRUE(loaded.Get("ix_bad").ok());
}

TEST_F(StatsCatalogRobustnessTest, RecoverHandlesTornTail) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("ix_a", 100));
  catalog.Put(MakeStats("ix_b", 200));
  std::string text = catalog.SaveToString();
  // A torn write: the file ends mid-entry.
  size_t cut = text.rfind("[end crc=");
  ASSERT_NE(cut, std::string::npos);
  text.resize(cut);

  StatsCatalog loaded;
  auto report = loaded.RecoverFromString(text);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->entries_loaded, 1u);
  EXPECT_EQ(report->entries_quarantined, 1u);
  EXPECT_EQ(loaded.QuarantinedNames().size(), 1u);
}

TEST_F(StatsCatalogRobustnessTest, V1FilesStillLoad) {
  // The pre-checksum format: no header, plain [end] trailers.
  std::string v1 =
      "[index]\n"
      "name=ix_legacy\n"
      "table_pages=50\n"
      "table_records=500\n"
      "distinct_keys=100\n"
      "pages_accessed=50\n"
      "b_min=12\n"
      "b_max=50\n"
      "f_min=150\n"
      "clustering=0.5\n"
      "knots=12:150,50:50\n"
      "[end]\n";
  StatsCatalog strict;
  ASSERT_TRUE(strict.LoadFromString(v1).ok());
  ASSERT_TRUE(strict.Get("ix_legacy").ok());
  EXPECT_EQ(strict.Get("ix_legacy")->table_pages, 50u);

  StatsCatalog recovering;
  auto report = recovering.RecoverFromString(v1);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->format_version, 1);
  EXPECT_EQ(report->entries_loaded, 1u);
  EXPECT_EQ(report->entries_quarantined, 0u);
}

TEST_F(StatsCatalogRobustnessTest, UnknownFutureVersionIsRejected) {
  std::string text = "[epfis-stats-catalog-v9]\n[index]\nname=x\n[end]\n";
  StatsCatalog catalog;
  EXPECT_EQ(catalog.LoadFromString(text).code(), StatusCode::kCorruption);
  EXPECT_EQ(catalog.RecoverFromString(text).status().code(),
            StatusCode::kCorruption);
}

TEST_F(StatsCatalogRobustnessTest, V2EntryWithoutChecksumIsTorn) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("ix_a", 100));
  std::string text = catalog.SaveToString();
  size_t at = text.find("[end crc=");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, text.find(']', at) - at + 1, "[end]");
  StatsCatalog loaded;
  EXPECT_EQ(loaded.LoadFromString(text).code(), StatusCode::kCorruption);
}

TEST_F(StatsCatalogRobustnessTest, FileRoundTripIsAtomicAndDurable) {
  std::string path = dir_ + "/stats.cat";
  StatsCatalog catalog;
  catalog.Put(MakeStats("ix_a", 100));
  ASSERT_TRUE(catalog.SaveToFile(path).ok());
  EXPECT_FALSE(HasTmpLeak());

  StatsCatalog loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_TRUE(loaded.Get("ix_a").ok());
}

// The torn-write regression: an injected failure mid-save must leave the
// previous on-disk catalog byte-identical and loadable, with no tmp file
// left behind.
TEST_F(StatsCatalogRobustnessTest, InjectedWriteFailurePreservesOldCatalog) {
  std::string path = dir_ + "/stats.cat";
  StatsCatalog old_catalog;
  old_catalog.Put(MakeStats("ix_old", 100));
  ASSERT_TRUE(old_catalog.SaveToFile(path).ok());
  std::string old_bytes = Slurp(path);

  StatsCatalog new_catalog;
  new_catalog.Put(MakeStats("ix_old", 100));
  new_catalog.Put(MakeStats("ix_new", 200));
  for (const char* point :
       {"catalog.save.open", "catalog.save.write", "catalog.save.fsync",
        "catalog.save.rename"}) {
    SCOPED_TRACE(point);
    FaultSpec spec;
    spec.skip_calls = 0;
    spec.max_fires = 1;
    FaultInjector::Global().Arm(point, spec);
    Status status = new_catalog.SaveToFile(path);
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    FaultInjector::Global().Disarm(point);

    EXPECT_EQ(Slurp(path), old_bytes) << "old catalog must survive";
    EXPECT_FALSE(HasTmpLeak()) << "tmp file leaked";
    StatsCatalog check;
    ASSERT_TRUE(check.LoadFromFile(path).ok());
    EXPECT_TRUE(check.Get("ix_old").ok());
    EXPECT_FALSE(check.Contains("ix_new"));
  }

  // Recovery on the next clean call: the save goes through untouched.
  ASSERT_TRUE(new_catalog.SaveToFile(path).ok());
  StatsCatalog check;
  ASSERT_TRUE(check.LoadFromFile(path).ok());
  EXPECT_TRUE(check.Get("ix_new").ok());
}

TEST_F(StatsCatalogRobustnessTest, LoadFaultPointsSurfaceAsErrors) {
  std::string path = dir_ + "/stats.cat";
  StatsCatalog catalog;
  catalog.Put(MakeStats("ix_a", 100));
  ASSERT_TRUE(catalog.SaveToFile(path).ok());

  for (const char* point : {"catalog.load.open", "catalog.load.read"}) {
    SCOPED_TRACE(point);
    FaultSpec spec;
    spec.max_fires = 1;
    FaultInjector::Global().Arm(point, spec);
    StatsCatalog loaded;
    EXPECT_EQ(loaded.LoadFromFile(path).code(), StatusCode::kIoError);
    FaultInjector::Global().Disarm(point);
    // Clean retry succeeds.
    EXPECT_TRUE(loaded.LoadFromFile(path).ok());
  }
}

TEST_F(StatsCatalogRobustnessTest, RemoveClearsQuarantine) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("ix_a", 100));
  std::string text = catalog.SaveToString();
  size_t at = text.find("table_pages=100");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 15, "table_pages=999");
  StatsCatalog loaded;
  ASSERT_TRUE(loaded.RecoverFromString(text).ok());
  ASSERT_TRUE(loaded.IsQuarantined("ix_a"));
  loaded.Remove("ix_a");
  EXPECT_FALSE(loaded.IsQuarantined("ix_a"));
  EXPECT_EQ(loaded.Get("ix_a").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace epfis
