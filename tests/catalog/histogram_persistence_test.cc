#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "catalog/catalog.h"
#include "workload/data_gen.h"

namespace epfis {
namespace {

class HistogramPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.num_records = 3000;
    spec.num_distinct = 100;
    spec.records_per_page = 20;
    spec.theta = 0.86;
    spec.seed = 141;
    auto dataset = GenerateSynthetic(spec);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
    ASSERT_TRUE(catalog_.RegisterTable("t", dataset_->table()).ok());
    ASSERT_TRUE(
        catalog_.RegisterIndex("t.key", "t", 0, dataset_->index()).ok());
    path_ = testing::TempDir() + "/epfis_histograms_test.txt";
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<Dataset> dataset_;
  Catalog catalog_;
  std::string path_;
};

TEST_F(HistogramPersistenceTest, RoundTripPreservesEstimates) {
  auto hist = EquiDepthHistogram::Build(dataset_->key_counts(), 12);
  ASSERT_TRUE(hist.ok());
  ASSERT_TRUE(catalog_.PutHistogram("t.key", *hist).ok());
  ASSERT_TRUE(catalog_.SaveHistogramsToFile(path_).ok());

  Catalog fresh;
  ASSERT_TRUE(fresh.RegisterTable("t", dataset_->table()).ok());
  ASSERT_TRUE(fresh.RegisterIndex("t.key", "t", 0, dataset_->index()).ok());
  ASSERT_TRUE(fresh.LoadHistogramsFromFile(path_).ok());

  auto restored = fresh.GetHistogram("t.key");
  ASSERT_TRUE(restored.ok());
  for (auto [lo, hi] :
       {std::pair<int64_t, int64_t>{1, 10}, {20, 80}, {90, 100}}) {
    EXPECT_DOUBLE_EQ(
        restored->EstimateSelectivity(KeyRange::Closed(lo, hi)),
        hist->EstimateSelectivity(KeyRange::Closed(lo, hi)));
  }
}

TEST_F(HistogramPersistenceTest, EmptySaveLoads) {
  ASSERT_TRUE(catalog_.SaveHistogramsToFile(path_).ok());
  Catalog fresh;
  ASSERT_TRUE(fresh.RegisterTable("t", dataset_->table()).ok());
  ASSERT_TRUE(fresh.RegisterIndex("t.key", "t", 0, dataset_->index()).ok());
  ASSERT_TRUE(fresh.LoadHistogramsFromFile(path_).ok());
  EXPECT_FALSE(fresh.GetHistogram("t.key").ok());
}

TEST_F(HistogramPersistenceTest, LoadRejectsUnknownIndex) {
  auto hist = EquiDepthHistogram::Build(dataset_->key_counts(), 4);
  ASSERT_TRUE(hist.ok());
  ASSERT_TRUE(catalog_.PutHistogram("t.key", *hist).ok());
  ASSERT_TRUE(catalog_.SaveHistogramsToFile(path_).ok());

  Catalog stranger;  // No such index registered.
  Status s = stranger.LoadHistogramsFromFile(path_);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(HistogramPersistenceTest, LoadRejectsCorruptFile) {
  {
    std::ofstream out(path_);
    out << "[histogram-for]\nt.key\ngarbage\n[end]\n";
  }
  EXPECT_FALSE(catalog_.LoadHistogramsFromFile(path_).ok());
  {
    std::ofstream out(path_);
    out << "[histogram-for]\nt.key\nhistogram total=5\n1 5 5 3\n";  // No end.
  }
  EXPECT_FALSE(catalog_.LoadHistogramsFromFile(path_).ok());
  EXPECT_FALSE(catalog_.LoadHistogramsFromFile("/no/such/file").ok());
}

}  // namespace
}  // namespace epfis
