// The RCU publish/snapshot side of StatsCatalog.
//
// The concurrency tests here are the ThreadSanitizer drill for the
// snapshot swap (CI runs this file under TSan via the StatsCatalog
// regex): N writer threads Put+Publish whole catalog generations while M
// reader threads batch-estimate off snapshots with no synchronization of
// their own. Each published generation stamps every entry with the same
// token, so a reader can detect a torn snapshot (entries from two
// generations) purely from the data it reads.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "catalog/stats_catalog.h"
#include "epfis/est_io.h"
#include "util/fault.h"

namespace epfis {
namespace {

constexpr int kIndexes = 4;

std::string IndexName(int i) { return "idx" + std::to_string(i) + ".key"; }

// One catalog entry; `token` is stamped into distinct_keys (coherence
// marker) and into the last knot's y (so estimate outputs also carry it).
IndexStats MakeStats(int index, uint64_t token) {
  IndexStats stats;
  stats.index_name = IndexName(index);
  stats.table_pages = 1000;
  stats.table_records = 40000;
  stats.distinct_keys = token;
  stats.pages_accessed = 1000;
  stats.b_min = 12;
  stats.b_max = 1000;
  stats.f_min = 30000;
  stats.clustering = 0.5;
  stats.fpf = PiecewiseLinear::FromKnots(
                  {{12, 30000},
                   {300, 6000},
                   {1000, 1000 + static_cast<double>(token % 997)}})
                  .value();
  return stats;
}

TEST(StatsCatalogSnapshotTest, SnapshotBeforeFirstPublishIsEmpty) {
  StatsCatalog catalog;
  std::shared_ptr<const CatalogSnapshot> snapshot = catalog.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->size(), 0u);
  EXPECT_EQ(snapshot->generation(), 0u);
  EXPECT_FALSE(snapshot->Resolve("anything").valid());
}

TEST(StatsCatalogSnapshotTest, PublishFreezesCurrentEntries) {
  StatsCatalog catalog;
  catalog.Put(MakeStats(0, 7));
  ASSERT_TRUE(catalog.Publish().ok());
  std::shared_ptr<const CatalogSnapshot> first = catalog.snapshot();
  EXPECT_EQ(first->generation(), 1u);
  ASSERT_EQ(first->size(), 1u);

  // Later mutations are invisible until the next Publish...
  catalog.Put(MakeStats(1, 8));
  EXPECT_EQ(catalog.snapshot()->size(), 1u);
  ASSERT_TRUE(catalog.Publish().ok());
  std::shared_ptr<const CatalogSnapshot> second = catalog.snapshot();
  EXPECT_EQ(second->generation(), 2u);
  EXPECT_EQ(second->size(), 2u);

  // ...and the retired snapshot a reader still holds is untouched.
  EXPECT_EQ(first->size(), 1u);
  EXPECT_TRUE(first->Resolve(IndexName(0)).valid());
  EXPECT_FALSE(first->Resolve(IndexName(1)).valid());
}

TEST(StatsCatalogSnapshotTest, PublishCarriesQuarantineMarks) {
  StatsCatalog catalog;
  catalog.Put(MakeStats(0, 1));
  // Quarantine marks come from recovering loads; simulate one by loading
  // a v2 image with a corrupted entry.
  StatsCatalog source;
  source.Put(MakeStats(0, 1));
  source.Put(MakeStats(1, 1));
  std::string text = source.SaveToString();
  size_t field = text.find("table_pages=", text.find("idx1"));
  ASSERT_NE(field, std::string::npos);
  text[field + 12] = 'x';
  auto report = catalog.RecoverFromString(text);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->entries_quarantined, 1u);

  ASSERT_TRUE(catalog.Publish().ok());
  std::shared_ptr<const CatalogSnapshot> snapshot = catalog.snapshot();
  EXPECT_EQ(snapshot->size(), 2u);
  EXPECT_TRUE(snapshot->IsQuarantined(IndexName(1)));
  EXPECT_FALSE(snapshot->IsQuarantined(IndexName(0)));
  EXPECT_EQ(snapshot->Get(IndexName(1)).status().code(),
            StatusCode::kCorruption);
}

TEST(StatsCatalogSnapshotTest, FailedPublishLeavesPreviousSnapshotCurrent) {
  StatsCatalog catalog;
  catalog.Put(MakeStats(0, 1));
  ASSERT_TRUE(catalog.Publish().ok());
  std::shared_ptr<const CatalogSnapshot> before = catalog.snapshot();

  catalog.Put(MakeStats(1, 2));
  FaultInjector::Global().Arm("catalog.publish.swap", {});
  Status failed = catalog.Publish();
  FaultInjector::Global().Disarm("catalog.publish.swap");
  EXPECT_FALSE(failed.ok());
  // The swap never happened: readers still see the pre-fault snapshot.
  EXPECT_EQ(catalog.snapshot().get(), before.get());
  EXPECT_EQ(catalog.snapshot()->size(), 1u);

  // The catalog itself is fine; the next publish succeeds and catches up.
  ASSERT_TRUE(catalog.Publish().ok());
  EXPECT_EQ(catalog.snapshot()->size(), 2u);
}

// The TSan drill: concurrent Publish and EstimateBatch, no torn reads.
TEST(StatsCatalogSnapshotTest, ConcurrentPublishAndBatchEstimateIsCoherent) {
  StatsCatalog catalog;
  for (int i = 0; i < kIndexes; ++i) catalog.Put(MakeStats(i, 1));
  ASSERT_TRUE(catalog.Publish().ok());

  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kPublishes = 60;
  constexpr int kReadsPerReader = 200;

  // Writers serialize *with each other* (publishing half a generation is
  // a writer-side bug, not the race under test); readers take no lock at
  // all — that is the contract being drilled.
  std::mutex writer_mu;
  std::atomic<uint64_t> next_token{2};
  std::atomic<bool> stop{false};
  std::atomic<int> torn_snapshots{0};
  std::atomic<int> batch_failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPublishes; ++p) {
        std::lock_guard<std::mutex> lock(writer_mu);
        uint64_t token = next_token.fetch_add(1);
        for (int i = 0; i < kIndexes; ++i) catalog.Put(MakeStats(i, token));
        ASSERT_TRUE(catalog.Publish().ok());
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      TableShape shape{1000, 40000};
      for (int iter = 0; iter < kReadsPerReader && !stop.load(); ++iter) {
        std::shared_ptr<const CatalogSnapshot> snapshot =
            catalog.snapshot();
        ASSERT_EQ(snapshot->size(), static_cast<size_t>(kIndexes));

        // Every entry of one snapshot must carry the same token: a batch
        // sees exactly one published generation, never a mix.
        uint64_t token =
            snapshot->EntryAt(snapshot->Resolve(IndexName(0)))
                .distinct_keys;
        std::vector<BatchProbe> probes;
        probes.reserve(kIndexes * 2);
        for (int i = 0; i < kIndexes; ++i) {
          CatalogSnapshot::Handle handle =
              snapshot->Resolve(IndexName(i));
          ASSERT_TRUE(handle.valid());
          if (snapshot->EntryAt(handle).distinct_keys != token) {
            torn_snapshots.fetch_add(1);
          }
          probes.push_back(BatchProbe{handle, {0.1, 1.0, 200}, shape});
          probes.push_back(BatchProbe{handle, {1.0, 1.0, 1000}, shape});
        }
        std::vector<CatalogEstimate> results(probes.size());
        Status status = EstIo::EstimateBatch(*snapshot, probes, results);
        if (!status.ok()) batch_failures.fetch_add(1);
        // The full-scan probe at B = b_max reads the last knot, whose y
        // carries the token — cross-check the curve data itself is from
        // the same generation as the scalar fields.
        double expect_full =
            1000.0 + static_cast<double>(token % 997);
        for (size_t i = 1; i < results.size(); i += 2) {
          if (results[i].source != EstimateSource::kLruFitCurve ||
              results[i].fetches != expect_full) {
            torn_snapshots.fetch_add(1);
          }
        }
      }
      stop.store(true);  // First finished reader releases the others.
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(torn_snapshots.load(), 0);
  EXPECT_EQ(batch_failures.load(), 0);
  EXPECT_EQ(catalog.snapshot()->generation(),
            1u + kWriters * kPublishes);
}

}  // namespace
}  // namespace epfis
