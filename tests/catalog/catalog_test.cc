#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "buffer/buffer_pool.h"
#include "storage/disk_manager.h"

namespace epfis {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<DiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 8);
    auto schema = Schema::Make({Column{"a"}, Column{"b"}});
    ASSERT_TRUE(schema.ok());
    heap_ = std::make_unique<TableHeap>(pool_.get(), *schema, "t");
    tree_ = std::make_unique<BTree>(pool_.get(), "idx");
  }

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<TableHeap> heap_;
  std::unique_ptr<BTree> tree_;
  Catalog catalog_;
};

TEST_F(CatalogTest, RegisterAndLookupTable) {
  ASSERT_TRUE(catalog_.RegisterTable("t", heap_.get()).ok());
  auto info = catalog_.GetTable("t");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->heap, heap_.get());
  EXPECT_FALSE(catalog_.GetTable("missing").ok());
}

TEST_F(CatalogTest, DuplicateTableRejected) {
  ASSERT_TRUE(catalog_.RegisterTable("t", heap_.get()).ok());
  EXPECT_EQ(catalog_.RegisterTable("t", heap_.get()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, NullHandlesRejected) {
  EXPECT_EQ(catalog_.RegisterTable("t", nullptr).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(catalog_.RegisterTable("t", heap_.get()).ok());
  EXPECT_EQ(catalog_.RegisterIndex("i", "t", 0, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CatalogTest, IndexRequiresKnownTableAndValidColumn) {
  EXPECT_EQ(catalog_.RegisterIndex("i", "nope", 0, tree_.get()).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(catalog_.RegisterTable("t", heap_.get()).ok());
  EXPECT_EQ(catalog_.RegisterIndex("i", "t", 5, tree_.get()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(catalog_.RegisterIndex("i", "t", 1, tree_.get()).ok());
}

TEST_F(CatalogTest, IndexesOnTableAndColumn) {
  ASSERT_TRUE(catalog_.RegisterTable("t", heap_.get()).ok());
  BTree tree2(pool_.get(), "idx2");
  ASSERT_TRUE(catalog_.RegisterIndex("i0", "t", 0, tree_.get()).ok());
  ASSERT_TRUE(catalog_.RegisterIndex("i1", "t", 1, &tree2).ok());

  EXPECT_EQ(catalog_.IndexesOnTable("t").size(), 2u);
  EXPECT_EQ(catalog_.IndexesOnTable("other").size(), 0u);
  auto on_col0 = catalog_.IndexesOnColumn("t", 0);
  ASSERT_EQ(on_col0.size(), 1u);
  EXPECT_EQ(on_col0[0].name, "i0");
}

IndexStats MakeStats(const std::string& name) {
  IndexStats stats;
  stats.index_name = name;
  stats.table_pages = 774;
  stats.table_records = 15480;
  stats.distinct_keys = 131;
  stats.pages_accessed = 774;
  stats.b_min = 12;
  stats.b_max = 774;
  stats.f_min = 9000;
  stats.clustering = 0.433;
  stats.sample_rate = 0.0099999997764825821;  // A non-round effective rate.
  stats.sampled_refs = 1548;
  stats.fpf = PiecewiseLinear::FromKnots(
                  {{12, 9000.25}, {100, 4000.5}, {774, 774}})
                  .value();
  return stats;
}

TEST(StatsCatalogTest, PutGetRemove) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("CMAC.BRAN"));
  EXPECT_TRUE(catalog.Contains("CMAC.BRAN"));
  EXPECT_EQ(catalog.size(), 1u);
  auto got = catalog.Get("CMAC.BRAN");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->table_pages, 774u);
  EXPECT_FALSE(catalog.Get("other").ok());
  catalog.Remove("CMAC.BRAN");
  EXPECT_FALSE(catalog.Contains("CMAC.BRAN"));
}

TEST(StatsCatalogTest, PutReplaces) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("x"));
  IndexStats updated = MakeStats("x");
  updated.clustering = 0.9;
  catalog.Put(updated);
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_DOUBLE_EQ(catalog.Get("x")->clustering, 0.9);
}

TEST(StatsCatalogTest, SerializationRoundTrip) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("CMAC.BRAN"));
  catalog.Put(MakeStats("PLON.CLID"));

  std::string text = catalog.SaveToString();
  StatsCatalog loaded;
  ASSERT_TRUE(loaded.LoadFromString(text).ok());
  ASSERT_EQ(loaded.size(), 2u);

  auto original = catalog.Get("CMAC.BRAN").value();
  auto restored = loaded.Get("CMAC.BRAN").value();
  EXPECT_EQ(restored.table_pages, original.table_pages);
  EXPECT_EQ(restored.table_records, original.table_records);
  EXPECT_EQ(restored.distinct_keys, original.distinct_keys);
  EXPECT_EQ(restored.pages_accessed, original.pages_accessed);
  EXPECT_EQ(restored.b_min, original.b_min);
  EXPECT_EQ(restored.b_max, original.b_max);
  EXPECT_EQ(restored.f_min, original.f_min);
  EXPECT_DOUBLE_EQ(restored.clustering, original.clustering);
  // The sampling provenance survives exactly (%.17g round-trips the
  // non-round effective rate bit for bit).
  EXPECT_EQ(restored.sample_rate, original.sample_rate);
  EXPECT_EQ(restored.sampled_refs, original.sampled_refs);
  ASSERT_TRUE(restored.fpf.has_value());
  EXPECT_EQ(restored.fpf->knots(), original.fpf->knots());
  // The curve evaluates identically after the round trip.
  for (double b : {12.0, 50.0, 300.0, 774.0, 1000.0}) {
    EXPECT_DOUBLE_EQ(restored.fpf->Eval(b), original.fpf->Eval(b));
  }
}

TEST(StatsCatalogTest, LoadsPreSamplingCatalogsWithExactDefaults) {
  // Catalog files written before the sampling fields existed have no
  // sample_rate/sampled_refs lines; they must load as exact-pass entries.
  std::string old_format =
      "[index]\n"
      "name=legacy\n"
      "table_pages=100\n"
      "table_records=4000\n"
      "distinct_keys=50\n"
      "pages_accessed=100\n"
      "b_min=12\n"
      "b_max=100\n"
      "f_min=900\n"
      "clustering=0.5\n"
      "knots=12:900,100:100\n"
      "[end]\n";
  StatsCatalog catalog;
  ASSERT_TRUE(catalog.LoadFromString(old_format).ok());
  auto stats = catalog.Get("legacy");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->sample_rate, 1.0);
  EXPECT_EQ(stats->sampled_refs, 0u);
}

TEST(StatsCatalogTest, FileRoundTrip) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("idx"));
  std::string path = testing::TempDir() + "/epfis_stats_test.cat";
  ASSERT_TRUE(catalog.SaveToFile(path).ok());

  StatsCatalog loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_TRUE(loaded.Contains("idx"));
  std::remove(path.c_str());
}

TEST(StatsCatalogTest, LoadRejectsCorruptInput) {
  StatsCatalog catalog;
  EXPECT_FALSE(catalog.LoadFromString("garbage line\n").ok());
  EXPECT_FALSE(catalog.LoadFromString("[index]\nname=x\n").ok());
  EXPECT_FALSE(
      catalog.LoadFromString("[index]\nname=x\nbogus_field=1\n[end]\n").ok());
  EXPECT_FALSE(
      catalog.LoadFromString("[index]\nname=x\nknots=1-2\n[end]\n").ok());
  EXPECT_FALSE(catalog.LoadFromString("[index]\n[end]\n").ok());
  EXPECT_FALSE(catalog.LoadFromString("[end]\n").ok());
  // Failed loads leave the catalog unchanged.
  catalog.Put(MakeStats("keep"));
  EXPECT_FALSE(catalog.LoadFromString("junk\n").ok());
  EXPECT_TRUE(catalog.Contains("keep"));
}

TEST(StatsCatalogTest, IndexNamesSorted) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("zeta"));
  catalog.Put(MakeStats("alpha"));
  auto names = catalog.IndexNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(StatsCatalogTest, EmptyCatalogRoundTrip) {
  StatsCatalog catalog;
  StatsCatalog loaded;
  ASSERT_TRUE(loaded.LoadFromString(catalog.SaveToString()).ok());
  EXPECT_EQ(loaded.size(), 0u);
}

}  // namespace
}  // namespace epfis
