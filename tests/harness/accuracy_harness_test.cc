// End-to-end tests of the estimator-accuracy replay harness: it must
// validate its config, produce ground-truthed comparisons for every
// configured (dataset, scan, buffer) combination, agree with the paper's
// clustering expectations for the extreme placement windows, and publish
// its progress into the global metrics registry.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "harness/accuracy.h"
#include "obs/accuracy.h"
#include "obs/metrics.h"

namespace epfis {
namespace {

AccuracyHarnessConfig SmallConfig() {
  AccuracyHarnessConfig config;
  config.num_records = 20'000;
  config.num_distinct = 500;
  config.records_per_page = 40;
  config.window_fractions = {0.0, 1.0};
  config.scans_per_dataset = 20;
  config.buffer_fractions = {0.1, 0.5};
  config.seed = 7;
  return config;
}

TEST(AccuracyHarnessTest, RejectsBadConfigs) {
  AccuracyTracker tracker;
  AccuracyHarnessConfig config = SmallConfig();
  EXPECT_EQ(RunAccuracyHarness(config, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  config.window_fractions.clear();
  EXPECT_EQ(RunAccuracyHarness(config, &tracker).status().code(),
            StatusCode::kInvalidArgument);
  config = SmallConfig();
  config.scans_per_dataset = 0;
  EXPECT_EQ(RunAccuracyHarness(config, &tracker).status().code(),
            StatusCode::kInvalidArgument);
  config = SmallConfig();
  config.num_records = 0;
  EXPECT_EQ(RunAccuracyHarness(config, &tracker).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AccuracyHarnessTest, ReplaysEveryConfiguredCombination) {
  AccuracyTracker tracker;
  AccuracyHarnessConfig config = SmallConfig();
  auto report = RunAccuracyHarness(config, &tracker);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->datasets.size(), 2u);
  EXPECT_EQ(report->scans_evaluated, 2u * 20u);
  // Two buffer fractions, far enough apart that dedup keeps both.
  EXPECT_EQ(report->estimates_evaluated, 2u * 20u * 2u);
  EXPECT_EQ(tracker.samples(), report->estimates_evaluated);

  for (const auto& dataset : report->datasets) {
    EXPECT_GT(dataset.table_pages, 0u);
    EXPECT_EQ(dataset.records, config.num_records);
    EXPECT_GE(dataset.clustering, 0.0);
    EXPECT_LE(dataset.clustering, 1.0);
  }
  // K = 0 is perfectly clustered placement, K = 1 is random: the measured
  // clustering factors must sit near the opposite ends of [0, 1].
  EXPECT_GT(report->datasets[0].clustering, 0.8);
  EXPECT_LT(report->datasets[1].clustering, 0.2);

  // The errors themselves must be finite and sane: the estimator is the
  // paper's, so on its own synthetic protocol the mean relative error
  // should be well under 100%.
  EXPECT_TRUE(std::isfinite(tracker.MeanAbsRelativeError()));
  EXPECT_LT(tracker.MeanAbsRelativeError(), 1.0);
}

TEST(AccuracyHarnessTest, DeterministicForAFixedSeed) {
  AccuracyHarnessConfig config = SmallConfig();
  config.scans_per_dataset = 5;
  AccuracyTracker first;
  AccuracyTracker second;
  ASSERT_TRUE(RunAccuracyHarness(config, &first).ok());
  ASSERT_TRUE(RunAccuracyHarness(config, &second).ok());
  EXPECT_EQ(first.samples(), second.samples());
  EXPECT_DOUBLE_EQ(first.MeanSignedRelativeError(),
                   second.MeanSignedRelativeError());
  EXPECT_DOUBLE_EQ(first.MaxAbsRelativeError(),
                   second.MaxAbsRelativeError());
  EXPECT_EQ(first.ToJson(), second.ToJson());
}

// The end-to-end sampled-statistics property: running the whole harness
// with a SHARDS-sampled statistics pass (R = 0.1) must keep EstIo's
// accuracy close to the exact pass — sampled catalogs are only useful if
// the estimator error budget survives the sampling. Ground truth is still
// exact; only the statistics pass is sampled.
TEST(AccuracyHarnessTest, SampledStatsKeepEstimatorAccuracy) {
  AccuracyHarnessConfig config = SmallConfig();
  AccuracyTracker exact;
  ASSERT_TRUE(RunAccuracyHarness(config, &exact).ok());

  config.lru_fit.sample_rate = 0.1;
  AccuracyTracker sampled;
  auto report = RunAccuracyHarness(config, &sampled);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(sampled.samples(), exact.samples());
  EXPECT_TRUE(std::isfinite(sampled.MeanAbsRelativeError()));
  // Same bound the exact run is held to...
  EXPECT_LT(sampled.MeanAbsRelativeError(), 1.0);
  // ...and no meaningful degradation against it (deterministic hash
  // sampling, so the margin cannot flake).
  EXPECT_LT(sampled.MeanAbsRelativeError(),
            exact.MeanAbsRelativeError() + 0.05);
}

TEST(AccuracyHarnessTest, PublishesProgressMetrics) {
#if EPFIS_METRICS_ENABLED
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  AccuracyTracker tracker;
  AccuracyHarnessConfig config = SmallConfig();
  config.scans_per_dataset = 4;
  auto report = RunAccuracyHarness(config, &tracker);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  MetricsSnapshot after = MetricsRegistry::Global().Snapshot();

  auto delta = [&before, &after](const std::string& name) {
    uint64_t was = before.counters.count(name) ? before.counters.at(name) : 0;
    return after.counters.at(name) - was;
  };
  EXPECT_EQ(delta("accuracy.datasets"), 2u);
  EXPECT_EQ(delta("accuracy.scans"), report->scans_evaluated);
  EXPECT_EQ(delta("accuracy.estimates"), report->estimates_evaluated);
  EXPECT_GT(after.histograms.at("accuracy.lru_fit_ns").count, 0u);
  EXPECT_GT(after.histograms.at("accuracy.replay_ns").count, 0u);
#else
  GTEST_SKIP() << "metrics compiled out";
#endif
}

}  // namespace
}  // namespace epfis
