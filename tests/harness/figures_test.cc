#include "harness/figures.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "baselines/ml.h"
#include "catalog/stats_catalog.h"
#include "epfis/lru_fit.h"
#include "exec/multi_index.h"
#include "workload/data_gen.h"

namespace epfis {
namespace {

ExperimentResult TinyResult() {
  ExperimentResult result;
  result.buffer_sizes = {10, 20};
  result.buffer_pct = {10.0, 20.0};
  result.algorithms = {AlgorithmErrors{"EPFIS", {1.5, -2.5}, {2.0, 3.0}},
                       AlgorithmErrors{"ML", {30.0, 40.0}, {35.0, 45.0}}};
  return result;
}

TEST(FiguresOutputTest, CsvAppendsWithHeaderOnce) {
  std::string path = testing::TempDir() + "/epfis_figures_test.csv";
  std::remove(path.c_str());
  ExperimentResult result = TinyResult();
  ASSERT_TRUE(WriteExperimentCsv(result, "labelA", path).ok());
  ASSERT_TRUE(WriteExperimentCsv(result, "labelB", path).ok());

  std::ifstream in(path);
  std::string line;
  int header_rows = 0, data_rows = 0;
  while (std::getline(in, line)) {
    if (line.rfind("label,", 0) == 0) {
      ++header_rows;
    } else if (!line.empty()) {
      ++data_rows;
    }
  }
  EXPECT_EQ(header_rows, 1);
  EXPECT_EQ(data_rows, 2 * 2 * 2);  // 2 labels x 2 buffers x 2 algorithms.
  std::remove(path.c_str());
}

TEST(FiguresOutputTest, NormalizedFpfCurvePrintsRatios) {
  std::ostringstream os;
  std::vector<FpfPoint> points = {{10, 500}, {100, 100}};
  PrintNormalizedFpfCurve("test.idx", points, 100, os);
  std::string out = os.str();
  EXPECT_NE(out.find("test.idx"), std::string::npos);
  EXPECT_NE(out.find("5.000"), std::string::npos);  // F/T at B=10.
  EXPECT_NE(out.find("1.000"), std::string::npos);  // F/T at B=T.
}

TEST(MlEdgeTest, KeyValuesClampedToCardinality) {
  MlEstimator ml(100, 10000, 50);
  // x beyond I clamps: sigma > 1 treated as full.
  EXPECT_DOUBLE_EQ(ml.Estimate({5.0, 100}), ml.Estimate({1.0, 100}));
}

TEST(MlEdgeTest, DegenerateSinglePageTable) {
  MlEstimator ml(1, 100, 10);
  double est = ml.Estimate({0.5, 1});
  EXPECT_GE(est, 0.0);
  EXPECT_LE(est, 1.0 + 1e-9);
}

TEST(MultiIndexEdgeTest, EmptyRangesYieldEmptyResults) {
  SyntheticSpec spec;
  spec.num_records = 2000;
  spec.num_distinct = 50;
  spec.secondary_distinct = 10;
  spec.records_per_page = 20;
  spec.seed = 191;
  auto dataset = GenerateSynthetic(spec);
  ASSERT_TRUE(dataset.ok());
  auto pool = (*dataset)->MakeDataPool(8);
  auto result = RunMultiIndexScan(
      *(*dataset)->index(), KeyRange::Closed(900, 999), *(*dataset)->index2(),
      KeyRange::Closed(1, 10), IndexCombineOp::kAnd, *(*dataset)->table(),
      pool.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rids_from_first, 0u);
  EXPECT_EQ(result->rids_combined, 0u);
  EXPECT_EQ(result->data_page_fetches, 0u);
}

TEST(StatsCatalogEdgeTest, EntryWithoutCurveRoundTrips) {
  StatsCatalog catalog;
  IndexStats stats;
  stats.index_name = "curveless";
  stats.table_pages = 10;
  stats.table_records = 100;
  catalog.Put(stats);
  StatsCatalog loaded;
  ASSERT_TRUE(loaded.LoadFromString(catalog.SaveToString()).ok());
  auto got = loaded.Get("curveless");
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->fpf.has_value());
  EXPECT_EQ(got->FullScanFetches(5.0), 0.0);
}

TEST(LruFitEdgeTest, MinimaxCriterionProducesValidStats) {
  std::vector<PageId> trace;
  for (int r = 0; r < 5; ++r) {
    for (PageId p = 0; p < 200; ++p) trace.push_back(p);
  }
  LruFitOptions options;
  options.fit_criterion = LruFitOptions::FitCriterion::kMinimax;
  auto stats = RunLruFit(trace, 200, 40, "mm", options);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->fpf.has_value());
  EXPECT_LE(stats->fpf->num_segments(), 6u);
  // Both criteria agree on the endpoints of the modeled range.
  auto lsq = RunLruFit(trace, 200, 40, "ls");
  ASSERT_TRUE(lsq.ok());
  EXPECT_DOUBLE_EQ(stats->fpf->min_x(), lsq->fpf->min_x());
  EXPECT_DOUBLE_EQ(stats->fpf->max_x(), lsq->fpf->max_x());
}

}  // namespace
}  // namespace epfis
