#include "harness/contention.h"

#include <gtest/gtest.h>

#include <memory>

#include "workload/data_gen.h"

namespace epfis {
namespace {

class ContentionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.num_records = 12000;
    spec.num_distinct = 300;
    spec.records_per_page = 20;
    spec.window_fraction = 0.4;
    spec.seed = 101;
    auto dataset = GenerateSynthetic(spec);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
    gen_ = std::make_unique<ScanGenerator>(dataset_.get(), 5);
  }

  std::vector<ScanRange> MakeScans(int n, double fraction) {
    std::vector<ScanRange> scans;
    for (int i = 0; i < n; ++i) scans.push_back(gen_->FromFraction(fraction));
    return scans;
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<ScanGenerator> gen_;
};

TEST_F(ContentionTest, ValidatesInput) {
  ContentionConfig config;
  config.buffer_pages = 100;
  EXPECT_FALSE(RunContentionExperiment(*dataset_, {}, config).ok());
  config.buffer_pages = 0;
  EXPECT_FALSE(
      RunContentionExperiment(*dataset_, MakeScans(2, 0.1), config).ok());
}

TEST_F(ContentionTest, SingleStreamEqualsSolo) {
  ContentionConfig config;
  config.buffer_pages = 120;
  auto result = RunContentionExperiment(*dataset_, MakeScans(1, 0.3), config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->streams.size(), 1u);
  EXPECT_EQ(result->streams[0].shared_fetches,
            result->streams[0].solo_fetches);
  EXPECT_DOUBLE_EQ(result->InflationFactor(), 1.0);
}

TEST_F(ContentionTest, SharingNeverBeatsSoloTotalsOnDisjointStreams) {
  // Streams over disjoint key ranges touch (mostly) different pages:
  // sharing the pool can only add pressure.
  std::vector<ScanRange> scans = {
      ScanRange{1, 70, dataset_->RecordsInRange(1, 70),
                static_cast<double>(dataset_->RecordsInRange(1, 70)) /
                    dataset_->num_records()},
      ScanRange{150, 220, dataset_->RecordsInRange(150, 220),
                static_cast<double>(dataset_->RecordsInRange(150, 220)) /
                    dataset_->num_records()},
  };
  ContentionConfig config;
  config.buffer_pages = 80;
  auto result = RunContentionExperiment(*dataset_, scans, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->total_shared, result->total_solo);
  EXPECT_GE(result->InflationFactor(), 1.0);
}

TEST_F(ContentionTest, SharedBoundedBySoloAndShareModels) {
  // The equal-share model (each stream alone with B/m) brackets reality
  // from above for disjoint round-robin streams; solo-with-full-B from
  // below.
  auto scans = MakeScans(3, 0.2);
  ContentionConfig config;
  config.buffer_pages = 150;
  auto result = RunContentionExperiment(*dataset_, scans, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->total_shared, result->total_solo);
  // Allow slack above the share model: interleaving skew and constructive
  // sharing both move the number, but it must be the right magnitude.
  EXPECT_LT(result->total_shared,
            result->total_share_model * 2 + 1000);
  EXPECT_GT(result->total_shared, result->total_share_model / 3);
}

TEST_F(ContentionTest, IdenticalStreamsShareConstructively) {
  // Two copies of the same scan share every page: round-robin interleaving
  // makes the second stream ride the first one's fetches, so the total is
  // far below 2x solo.
  ScanRange scan = gen_->FromFraction(0.3);
  std::vector<ScanRange> scans = {scan, scan};
  ContentionConfig config;
  config.buffer_pages = 200;
  auto result = RunContentionExperiment(*dataset_, scans, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->total_shared,
            result->total_solo * 3 / 2);  // Much less than 2x.
}

TEST_F(ContentionTest, RandomInterleaveDeterministicPerSeed) {
  auto scans = MakeScans(3, 0.15);
  ContentionConfig config;
  config.buffer_pages = 100;
  config.mode = InterleaveMode::kRandom;
  config.seed = 9;
  auto a = RunContentionExperiment(*dataset_, scans, config);
  auto b = RunContentionExperiment(*dataset_, scans, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_shared, b->total_shared);
  for (size_t s = 0; s < a->streams.size(); ++s) {
    EXPECT_EQ(a->streams[s].shared_fetches, b->streams[s].shared_fetches);
  }
}

TEST_F(ContentionTest, MoreStreamsMorePressure) {
  ContentionConfig config;
  config.buffer_pages = 120;
  auto two = RunContentionExperiment(*dataset_, MakeScans(2, 0.15), config);
  auto six = RunContentionExperiment(*dataset_, MakeScans(6, 0.15), config);
  ASSERT_TRUE(two.ok());
  ASSERT_TRUE(six.ok());
  EXPECT_GE(six->InflationFactor(), two->InflationFactor() * 0.9);
}

TEST_F(ContentionTest, AllReferencesAccountedFor) {
  auto scans = MakeScans(4, 0.1);
  ContentionConfig config;
  config.buffer_pages = 64;
  auto result = RunContentionExperiment(*dataset_, scans, config);
  ASSERT_TRUE(result.ok());
  for (size_t s = 0; s < scans.size(); ++s) {
    EXPECT_EQ(result->streams[s].references, scans[s].num_records);
    EXPECT_LE(result->streams[s].shared_fetches,
              result->streams[s].references);
    EXPECT_GE(result->streams[s].shared_fetches,
              result->streams[s].solo_fetches > 0 ? 1u : 0u);
  }
}

}  // namespace
}  // namespace epfis
