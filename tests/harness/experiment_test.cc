#include "harness/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "harness/figures.h"
#include "workload/data_gen.h"

namespace epfis {
namespace {

std::unique_ptr<Dataset> MakeDataset(double k, double theta = 0.0,
                                     uint64_t seed = 71) {
  // Paper-proportioned dataset (N/I = 100, as in §5.2), scaled down 50x.
  SyntheticSpec spec;
  spec.num_records = 20000;
  spec.num_distinct = 200;
  spec.records_per_page = 20;
  spec.theta = theta;
  spec.window_fraction = k;
  spec.seed = seed;
  auto dataset = GenerateSynthetic(spec);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).value();
}

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.num_scans = 40;
  config.min_buffer_pages = 30;  // T = 1000 here; paper's 300 would clamp.
  config.seed = 9;
  return config;
}

TEST(SweepBufferSizesTest, PaperDefaults) {
  ExperimentConfig config;  // min 300, 5%..90% step 5%.
  auto sizes = SweepBufferSizes(20000, config);
  ASSERT_EQ(sizes.size(), 18u);
  EXPECT_EQ(sizes.front(), 1000u);  // 5% of 20000.
  EXPECT_EQ(sizes.back(), 18000u);  // 90%.
}

TEST(SweepBufferSizesTest, SmallTableClampsToMinBuffer) {
  ExperimentConfig config;
  auto sizes = SweepBufferSizes(1000, config);
  // max(300, 0.05*1000) = 300 for the first several fractions; dedup
  // leaves 300 once, then 350, 400, ..., 900.
  EXPECT_EQ(sizes.front(), 300u);
  EXPECT_EQ(sizes.back(), 900u);
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]);
  }
}

TEST(SweepBufferSizesTest, NeverExceedsTableSize) {
  ExperimentConfig config;
  auto sizes = SweepBufferSizes(200, config);
  for (uint64_t b : sizes) EXPECT_LE(b, 200u);
}

TEST(ExperimentTest, RunsAndReportsAllFiveAlgorithms) {
  auto dataset = MakeDataset(0.1);
  auto result = RunErrorExperiment(*dataset, SmallConfig());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->algorithms.size(), 5u);
  EXPECT_EQ(result->algorithms[0].name, "EPFIS");
  EXPECT_EQ(result->algorithms[1].name, "ML");
  EXPECT_EQ(result->algorithms[2].name, "DC");
  EXPECT_EQ(result->algorithms[3].name, "SD");
  EXPECT_EQ(result->algorithms[4].name, "OT");
  for (const AlgorithmErrors& algo : result->algorithms) {
    EXPECT_EQ(algo.error_pct.size(), result->buffer_sizes.size());
    for (double e : algo.error_pct) EXPECT_TRUE(std::isfinite(e));
  }
  EXPECT_GT(result->total_actual_fetches, 0u);
}

TEST(ExperimentTest, EpfisErrorIsSmallOnHeadlineWorkload) {
  // The paper's headline claim: EPFIS errors stay low across the whole
  // buffer sweep (max 48% on its synthetic datasets) and stable.
  for (double k : {0.05, 0.5}) {
    auto dataset = MakeDataset(k);
    auto result = RunErrorExperiment(*dataset, SmallConfig());
    ASSERT_TRUE(result.ok());
    EXPECT_LT(MaxAbsErrorPct(*result, "EPFIS"), 50.0) << "k=" << k;
  }
}

TEST(ExperimentTest, EpfisDominatesBaselinesOnUnclusteredData) {
  auto dataset = MakeDataset(0.5);
  auto result = RunErrorExperiment(*dataset, SmallConfig());
  ASSERT_TRUE(result.ok());
  double epfis = MaxAbsErrorPct(*result, "EPFIS");
  // EPFIS should beat the cluster-ratio heuristics clearly on unclustered
  // data (the paper's figures show order-of-magnitude gaps).
  EXPECT_LT(epfis, MaxAbsErrorPct(*result, "DC"));
  EXPECT_LT(epfis, MaxAbsErrorPct(*result, "OT"));
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  auto dataset = MakeDataset(0.2);
  auto r1 = RunErrorExperiment(*dataset, SmallConfig());
  auto r2 = RunErrorExperiment(*dataset, SmallConfig());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t a = 0; a < r1->algorithms.size(); ++a) {
    EXPECT_EQ(r1->algorithms[a].error_pct, r2->algorithms[a].error_pct);
  }
}

TEST(ExperimentTest, IncludeNaiveAddsFourAlgorithms) {
  auto dataset = MakeDataset(0.2);
  ExperimentConfig config = SmallConfig();
  config.num_scans = 10;
  config.include_naive = true;
  auto result = RunErrorExperiment(*dataset, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->algorithms.size(), 9u);
}

TEST(ExperimentTest, StatsAreConsistentWithDataset) {
  auto dataset = MakeDataset(0.1);
  auto result = RunErrorExperiment(*dataset, SmallConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.table_pages, dataset->num_pages());
  EXPECT_EQ(result->stats.table_records, dataset->num_records());
  EXPECT_EQ(result->stats.distinct_keys, dataset->num_distinct());
  EXPECT_GE(result->stats.clustering, 0.0);
  EXPECT_LE(result->stats.clustering, 1.0);
  EXPECT_EQ(result->trace_stats.table_records, dataset->num_records());
}

TEST(ExperimentTest, FullOnlyScanMixWorks) {
  auto dataset = MakeDataset(0.3);
  ExperimentConfig config = SmallConfig();
  config.mix = ScanMix::kFullOnly;
  config.num_scans = 3;
  auto result = RunErrorExperiment(*dataset, config);
  ASSERT_TRUE(result.ok());
  // For full scans EPFIS interpolates the measured full-scan curve. The
  // residual is bounded by the segment fit; at this scale the paper's
  // sqrt-spaced schedule yields only ~16 samples (vs ~79 at paper scale),
  // so interpolation across the window knee can err by ~15-20% between
  // samples. Nearly exact at the sampled sizes, bounded in between.
  EXPECT_LT(MaxAbsErrorPct(*result, "EPFIS"), 25.0);
}

TEST(ExperimentTest, SargableSelectivityRuns) {
  auto dataset = MakeDataset(0.3);
  ExperimentConfig config = SmallConfig();
  config.num_scans = 20;
  config.sargable_selectivity = 0.3;
  auto result = RunErrorExperiment(*dataset, config);
  ASSERT_TRUE(result.ok());
  // The urn model is a coarse heuristic (the paper never validates it
  // experimentally); require sane, finite errors — and that EPFIS's urn
  // model is no worse than the linear S-scaling the baselines fall back
  // to, on at least one of the cluster-ratio baselines.
  double epfis = MaxAbsErrorPct(*result, "EPFIS");
  EXPECT_LT(epfis, 200.0);
  EXPECT_LT(epfis, std::max(MaxAbsErrorPct(*result, "DC"),
                            MaxAbsErrorPct(*result, "OT")));
}

TEST(ExperimentTest, RejectsZeroScans) {
  auto dataset = MakeDataset(0.1);
  ExperimentConfig config;
  config.num_scans = 0;
  EXPECT_FALSE(RunErrorExperiment(*dataset, config).ok());
}

TEST(FiguresTest, PrintExperimentTableContainsAlgorithms) {
  auto dataset = MakeDataset(0.1);
  ExperimentConfig config = SmallConfig();
  config.num_scans = 5;
  auto result = RunErrorExperiment(*dataset, config);
  ASSERT_TRUE(result.ok());
  std::ostringstream os;
  PrintExperimentTable(*result, os);
  std::string out = os.str();
  for (const char* name : {"EPFIS", "ML", "DC", "SD", "OT", "buffer%"}) {
    EXPECT_NE(out.find(name), std::string::npos) << name;
  }
}

TEST(FiguresTest, SummaryAndMaxError) {
  auto dataset = MakeDataset(0.1);
  ExperimentConfig config = SmallConfig();
  config.num_scans = 5;
  auto result = RunErrorExperiment(*dataset, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(MaxAbsErrorPct(*result, "EPFIS"), 0.0);
  EXPECT_EQ(MaxAbsErrorPct(*result, "NOPE"), -1.0);
  std::string summary = SummarizeMaxErrors(*result);
  EXPECT_NE(summary.find("EPFIS"), std::string::npos);
  EXPECT_NE(summary.find("max|err|"), std::string::npos);
}

}  // namespace
}  // namespace epfis
