// Quickstart: the full EPFIS lifecycle on a small synthetic table.
//
//   1. Build a table + B-tree index (the §5.2 generator).
//   2. Statistics time: run Subprogram LRU-Fit once over the index's page
//      reference string; store the result in the statistics catalog.
//   3. Query time: ask Subprogram Est-IO for page-fetch estimates and
//      compare them against physically executed scans at several buffer
//      sizes.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "catalog/stats_catalog.h"
#include "epfis/epfis.h"
#include "exec/index_scan.h"
#include "util/table_printer.h"
#include "workload/data_gen.h"
#include "workload/scan_gen.h"

using namespace epfis;

int main() {
  // --- 1. A 50k-record table with a moderately unclustered index. ---
  SyntheticSpec spec;
  spec.name = "orders";
  spec.num_records = 50'000;
  spec.num_distinct = 500;    // 100 rows per key value.
  spec.records_per_page = 40; // => T = 1250 pages.
  spec.window_fraction = 0.2; // Sliding-window clustering.
  spec.seed = 7;

  auto dataset_or = GenerateSynthetic(spec);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status().ToString() << '\n';
    return 1;
  }
  Dataset& dataset = **dataset_or;
  std::cout << "table '" << dataset.name() << "': N=" << dataset.num_records()
            << " records, T=" << dataset.num_pages() << " pages, I="
            << dataset.num_distinct() << " distinct keys\n\n";

  // --- 2. Statistics collection (once, like RUNSTATS). ---
  auto trace_or = dataset.FullIndexPageTrace();
  if (!trace_or.ok()) {
    std::cerr << trace_or.status().ToString() << '\n';
    return 1;
  }
  auto stats_or = RunLruFit(*trace_or, dataset.num_pages(),
                            dataset.num_distinct(), "orders.key");
  if (!stats_or.ok()) {
    std::cerr << stats_or.status().ToString() << '\n';
    return 1;
  }
  IndexStats stats = std::move(stats_or).value();
  std::cout << "LRU-Fit: modeled B in [" << stats.b_min << ", " << stats.b_max
            << "], clustering factor C = " << stats.clustering
            << ",\n  FPF curve stored as " << stats.fpf->num_segments()
            << " line segments (" << stats.fpf->knots().size()
            << " knot pairs in the catalog)\n\n";

  StatsCatalog catalog;
  catalog.Put(stats);
  // Freeze the entries into the immutable snapshot Est-IO serves from;
  // estimate threads read it lock-free while later Put+Publish cycles
  // swap in fresh statistics behind them.
  if (Status published = catalog.Publish(); !published.ok()) {
    std::cerr << published.ToString() << '\n';
    return 1;
  }
  std::shared_ptr<const CatalogSnapshot> snapshot = catalog.snapshot();

  // --- 3. Estimates vs physically measured fetches. ---
  ScanGenerator scans(&dataset, 21);
  TablePrinter table({"sigma", "buffer", "estimated F", "measured F",
                      "rel err %"});
  TableShape shape{dataset.num_pages(), dataset.num_records()};
  for (double fraction : {0.02, 0.10, 0.40, 1.0}) {
    ScanRange scan = scans.FromFraction(fraction);
    for (uint64_t buffer : {60ULL, 250ULL, 1000ULL}) {
      ScanSpec query;
      query.sigma = scan.sigma;
      query.buffer_pages = buffer;
      auto estimate_or =
          EstIo::EstimateFromCatalog(*snapshot, "orders.key", query, shape);
      if (!estimate_or.ok()) {
        std::cerr << estimate_or.status().ToString() << '\n';
        return 1;
      }
      double estimate = estimate_or->fetches;

      auto pool = dataset.MakeDataPool(buffer);
      auto run_or = RunIndexScan(*dataset.index(), *dataset.table(),
                                 pool.get(),
                                 KeyRange::Closed(scan.lo_key, scan.hi_key));
      if (!run_or.ok()) {
        std::cerr << run_or.status().ToString() << '\n';
        return 1;
      }
      double actual = static_cast<double>(run_or->data_page_fetches);
      table.AddRow()
          .Cell(scan.sigma, 3)
          .Cell(buffer)
          .Cell(estimate, 1)
          .Cell(actual, 0)
          .Cell(actual > 0 ? 100.0 * (estimate - actual) / actual : 0.0, 1);
    }
  }
  table.Print(std::cout);
  std::cout << "\n(estimates use only the catalog entry; measurements run "
               "the scan\n through a real LRU buffer pool of the given "
               "size)\n";
  return 0;
}
