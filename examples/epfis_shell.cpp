// epfis_shell — a scriptable mini-console over the whole stack, the kind
// of driver an open-source release ships for poking at the system without
// writing C++. Reads commands from stdin (one per line, '#' comments):
//
//   create NAME records distinct rpp window theta [noise seed]
//       synthesize a table + index (the §5.2 generator)
//   gwl COLUMN [scale]
//       synthesize a GWL-like column (e.g. gwl CMAC.BRAN 0.25)
//   stats NAME [--sample-rate=R] [--sample-max-pages=N]
//              [--online [--window=W] [--drift-band=E]]
//       run LRU-Fit + build a histogram; store both in the catalog.
//       --sample-rate runs the SHARDS-sampled collection pass at rate R
//       (0 < R <= 1); --sample-max-pages caps the sampled-page set,
//       adapting the rate to the trace. Defaults are the exact pass.
//       --online streams the trace through the OnlineLruFit engine
//       instead: the catalog entry is bootstrap-published at the first
//       refresh and re-published whenever the drift detector fires.
//       --window sets the decay window in references (default: the whole
//       trace), --drift-band the relative-error band (default 0.05).
//   show NAME
//       table shape and catalog statistics
//   estimate NAME sigma buffer [sargable]
//       Est-IO estimate, served lock-free from the published catalog
//       snapshot. When the index's statistics are missing or quarantined
//       the estimate degrades to the Yao/Cardenas formula and is flagged
//       "(degraded)".
//   estimate --batch NAME sigma1[,sigma2,...] buf1[,buf2,...] [sargable]
//       one EstIo::EstimateBatch call over the cross product of the sigma
//       and buffer lists (the handle is resolved once); prints per-probe
//       provenance
//   save PATH [v2|v3]
//       write the statistics catalog (crash-safe: tmp + fsync + rename);
//       v2 = checksummed text (default), v3 = binary mmap-able
//   catalog convert SRC DST [v2|v3]
//       re-encode a catalog file between formats (default: to v3); SRC
//       may be any loadable version (v1/v2 text or v3 binary)
//   load PATH
//       recovering catalog load; prints the provenance report (entries
//       loaded / quarantined, checksum failures)
//   explain NAME lo hi buffer [sorted]
//       enumerate optimizer plans (sigma from the histogram)
//   run NAME lo hi buffer
//       physically execute index scan + table scan, report fetches
//   quit
//
// Example session:  ./build/examples/epfis_shell <<'EOF'
//   create orders 40000 400 40 0.2 0
//   stats orders
//   estimate orders 0.1 250
//   explain orders 1 40 250
//   run orders 1 40 250
// EOF

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "epfis/epfis.h"
#include "exec/index_scan.h"
#include "exec/optimizer.h"
#include "exec/table_scan.h"
#include "util/table_printer.h"
#include "workload/data_gen.h"
#include "workload/gwl.h"

using namespace epfis;

namespace {

class Shell {
 public:
  int Loop(std::istream& in) {
    std::string line;
    while (std::getline(in, line)) {
      size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream tokens(line);
      std::string command;
      if (!(tokens >> command)) continue;
      if (command == "quit" || command == "exit") break;
      Status status = Dispatch(command, tokens);
      if (!status.ok()) {
        std::cout << "error: " << status.ToString() << '\n';
      }
    }
    return 0;
  }

 private:
  Status Dispatch(const std::string& command, std::istringstream& args) {
    if (command == "create") return Create(args);
    if (command == "gwl") return Gwl(args);
    if (command == "stats") return Stats(args);
    if (command == "show") return Show(args);
    if (command == "estimate") return Estimate(args);
    if (command == "explain") return Explain(args);
    if (command == "run") return Run(args);
    if (command == "save") return Save(args);
    if (command == "load") return Load(args);
    if (command == "catalog") return CatalogCmd(args);
    if (command == "help") {
      std::cout << "commands: create gwl stats show estimate explain run "
                   "save load catalog quit\n";
      return Status::Ok();
    }
    return Status::InvalidArgument("unknown command '" + command +
                                   "' (try help)");
  }

  Result<Dataset*> Find(const std::string& name) {
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      return Status::NotFound("no table named " + name +
                              " (use create or gwl first)");
    }
    return it->second.get();
  }

  Status Register(const std::string& name, std::unique_ptr<Dataset> dataset) {
    EPFIS_RETURN_IF_ERROR(catalog_.RegisterTable(name, dataset->table()));
    EPFIS_RETURN_IF_ERROR(catalog_.RegisterIndex(name + ".key", name, 0,
                                                 dataset->index()));
    datasets_[name] = std::move(dataset);
    std::cout << "created " << name << ": N=" << datasets_[name]->num_records()
              << " T=" << datasets_[name]->num_pages()
              << " I=" << datasets_[name]->num_distinct() << '\n';
    return Status::Ok();
  }

  Status Create(std::istringstream& args) {
    SyntheticSpec spec;
    std::string name;
    if (!(args >> name >> spec.num_records >> spec.num_distinct >>
          spec.records_per_page >> spec.window_fraction >> spec.theta)) {
      return Status::InvalidArgument(
          "usage: create NAME records distinct rpp window theta "
          "[noise seed]");
    }
    args >> spec.noise >> spec.seed;
    spec.name = name;
    if (datasets_.count(name) > 0) {
      return Status::AlreadyExists("table " + name + " exists");
    }
    EPFIS_ASSIGN_OR_RETURN(std::unique_ptr<Dataset> dataset,
                           GenerateSynthetic(spec));
    return Register(name, std::move(dataset));
  }

  Status Gwl(std::istringstream& args) {
    std::string column;
    if (!(args >> column)) {
      return Status::InvalidArgument("usage: gwl COLUMN [scale]");
    }
    GwlOptions options;
    options.scale = 0.25;
    args >> options.scale;
    EPFIS_ASSIGN_OR_RETURN(GwlColumnSpec spec, GwlColumnByName(column));
    if (datasets_.count(column) > 0) {
      return Status::AlreadyExists("table " + column + " exists");
    }
    EPFIS_ASSIGN_OR_RETURN(GwlSynthesis synthesis,
                           SynthesizeGwlColumn(spec, options));
    std::cout << "calibrated K=" << synthesis.calibrated_k
              << " measured C=" << synthesis.measured_c << " (target "
              << spec.target_clustering << ")\n";
    return Register(column, std::move(synthesis.dataset));
  }

  // The --online variant of `stats`: streams the trace through the
  // OnlineLruFit engine instead of the batch pass. The engine owns
  // publication — the entry lands in the catalog through the same RCU
  // Publish() path a background refresher would use (bootstrap at the
  // first refresh, then drift-triggered), so `estimate` picks it up with
  // no extra plumbing here.
  Status OnlineStats(const std::string& name, const Dataset& dataset,
                     const std::vector<PageId>& trace,
                     const LruFitOptions& fit, uint64_t window,
                     double drift_band) {
    if (trace.empty()) {
      return Status::InvalidArgument("stats: empty page trace");
    }
    OnlineLruFitOptions options;
    options.table_pages = dataset.num_pages();
    options.table_records = dataset.num_records();
    options.distinct_keys = dataset.num_distinct();
    options.window_refs = window > 0 ? window : trace.size();
    uint64_t span = std::min<uint64_t>(options.window_refs, trace.size());
    options.refresh_interval = std::max<uint64_t>(span / 5, 1);
    options.sample_rate = fit.sample_rate;
    options.sample_max_pages = fit.sample_max_pages;
    options.drift.band = drift_band;
    OnlineLruFit engine(name + ".key", options, &catalog_.stats());
    EPFIS_RETURN_IF_ERROR(engine.Ingest(trace));
    if (engine.publishes() == 0) EPFIS_RETURN_IF_ERROR(engine.Refresh());
    std::cout << "Online LRU-Fit: " << engine.total_refs()
              << " refs, window " << options.window_refs << ", "
              << engine.refreshes() << " refreshes, " << engine.publishes()
              << " publishes";
    if (!std::isnan(engine.last_drift_error())) {
      std::cout << ", last drift error " << engine.last_drift_error();
    }
    std::cout << '\n';
    return Status::Ok();
  }

  Status Stats(std::istringstream& args) {
    std::string name;
    if (!(args >> name)) {
      return Status::InvalidArgument(
          "usage: stats NAME [--sample-rate=R] [--sample-max-pages=N] "
          "[--online [--window=W] [--drift-band=E]]");
    }
    LruFitOptions options;
    bool online = false;
    uint64_t window = 0;
    double drift_band = 0.05;
    std::string flag;
    while (args >> flag) {
      if (flag.rfind("--sample-rate=", 0) == 0) {
        options.sample_rate = std::strtod(flag.c_str() + 14, nullptr);
      } else if (flag.rfind("--sample-max-pages=", 0) == 0) {
        options.sample_max_pages =
            std::strtoull(flag.c_str() + 19, nullptr, 10);
      } else if (flag == "--online") {
        online = true;
      } else if (flag.rfind("--window=", 0) == 0) {
        window = std::strtoull(flag.c_str() + 9, nullptr, 10);
      } else if (flag.rfind("--drift-band=", 0) == 0) {
        drift_band = std::strtod(flag.c_str() + 13, nullptr);
      } else {
        return Status::InvalidArgument(
            "stats: unknown flag '" + flag +
            "' (expected --sample-rate=, --sample-max-pages=, --online, "
            "--window= or --drift-band=)");
      }
    }
    if (!online && (window != 0 || drift_band != 0.05)) {
      return Status::InvalidArgument(
          "stats: --window/--drift-band only apply with --online");
    }
    EPFIS_ASSIGN_OR_RETURN(Dataset * dataset, Find(name));
    EPFIS_ASSIGN_OR_RETURN(std::vector<PageId> trace,
                           dataset->FullIndexPageTrace());
    if (online) {
      EPFIS_RETURN_IF_ERROR(OnlineStats(name, *dataset, trace, options,
                                        window, drift_band));
    } else {
      EPFIS_ASSIGN_OR_RETURN(
          IndexStats stats,
          RunLruFit(trace, dataset->num_pages(), dataset->num_distinct(),
                    name + ".key", options));
      std::cout << "LRU-Fit: C=" << stats.clustering << ", B in ["
                << stats.b_min << ", " << stats.b_max << "], "
                << stats.fpf->num_segments() << " segments";
      if (stats.sample_rate < 1.0) {
        std::cout << ", sampled at R=" << stats.sample_rate << " ("
                  << stats.sampled_refs << " of " << stats.table_records
                  << " refs)";
      } else {
        std::cout << ", exact (" << stats.table_records << " refs)";
      }
      std::cout << '\n';
      catalog_.stats().Put(std::move(stats));
      // Swap the new entry into the serving snapshot (RCU publish): the
      // estimate command reads the snapshot, never the mutable catalog.
      EPFIS_RETURN_IF_ERROR(catalog_.stats().Publish());
    }
    EPFIS_ASSIGN_OR_RETURN(
        EquiDepthHistogram histogram,
        EquiDepthHistogram::Build(dataset->key_counts(), 20));
    EPFIS_RETURN_IF_ERROR(
        catalog_.PutHistogram(name + ".key", std::move(histogram)));
    std::cout << "histogram: 20 equi-depth buckets\n";
    return Status::Ok();
  }

  Status Show(std::istringstream& args) {
    std::string name;
    if (!(args >> name)) return Status::InvalidArgument("usage: show NAME");
    EPFIS_ASSIGN_OR_RETURN(Dataset * dataset, Find(name));
    std::cout << name << ": N=" << dataset->num_records()
              << " T=" << dataset->num_pages()
              << " I=" << dataset->num_distinct()
              << " R=" << dataset->records_per_page() << '\n';
    auto stats = catalog_.stats().Get(name + ".key");
    if (stats.ok()) {
      std::cout << "  stats: C=" << stats->clustering
                << " F_min=" << stats->f_min << " knots=";
      for (const Knot& knot : stats->fpf->knots()) {
        std::cout << " (" << knot.x << "," << knot.y << ")";
      }
      std::cout << '\n';
    } else if (catalog_.stats().IsQuarantined(name + ".key")) {
      std::cout << "  stats: QUARANTINED (" << stats.status().message()
                << ") — rerun `stats " << name << "` to refresh\n";
    } else {
      std::cout << "  (no statistics collected yet)\n";
    }
    return Status::Ok();
  }

  Status Estimate(std::istringstream& args) {
    std::string name;
    if (!(args >> name)) {
      return Status::InvalidArgument(
          "usage: estimate [--batch] NAME sigma buffer [sargable]");
    }
    if (name == "--batch") return EstimateBatchCmd(args);
    ScanSpec scan;
    if (!(args >> scan.sigma >> scan.buffer_pages)) {
      return Status::InvalidArgument(
          "usage: estimate NAME sigma buffer [sargable]");
    }
    args >> scan.sargable_selectivity;
    EPFIS_ASSIGN_OR_RETURN(Dataset * dataset, Find(name));
    TableShape shape;
    shape.table_pages = dataset->num_pages();
    shape.table_records = dataset->num_records();
    // Serving path: read the published immutable snapshot (one atomic
    // load, no catalog mutex) with graceful degradation — missing or
    // quarantined statistics fall back to the Yao/Cardenas formula (and
    // the output says so) instead of failing the command; a malformed
    // spec (sigma outside [0, 1], buffer of 0 pages) still prints an
    // error instead of a silently clamped number.
    std::shared_ptr<const CatalogSnapshot> snapshot =
        catalog_.stats().snapshot();
    EPFIS_ASSIGN_OR_RETURN(
        CatalogEstimate est,
        EstIo::EstimateFromCatalog(*snapshot, name + ".key", scan, shape));
    std::cout << "estimated fetches: " << est.fetches;
    if (est.source == EstimateSource::kFormulaFallback) {
      std::cout << "  [DEGRADED: formula fallback — "
                << est.stats_status.message() << "]";
    }
    std::cout << '\n';
    return Status::Ok();
  }

  static Result<std::vector<double>> ParseList(const std::string& csv,
                                               const char* what) {
    std::vector<double> values;
    std::istringstream stream(csv);
    std::string item;
    while (std::getline(stream, item, ',')) {
      char* end = nullptr;
      double v = std::strtod(item.c_str(), &end);
      if (end == item.c_str() || *end != '\0') {
        return Status::InvalidArgument(std::string("estimate --batch: bad ") +
                                       what + " '" + item + "'");
      }
      values.push_back(v);
    }
    if (values.empty()) {
      return Status::InvalidArgument(std::string("estimate --batch: empty ") +
                                     what + " list");
    }
    return values;
  }

  Status EstimateBatchCmd(std::istringstream& args) {
    std::string name, sigma_csv, buffer_csv;
    if (!(args >> name >> sigma_csv >> buffer_csv)) {
      return Status::InvalidArgument(
          "usage: estimate --batch NAME sigma1[,sigma2,...] "
          "buf1[,buf2,...] [sargable]");
    }
    double sargable = 1.0;
    args >> sargable;
    EPFIS_ASSIGN_OR_RETURN(std::vector<double> sigmas,
                           ParseList(sigma_csv, "sigma"));
    EPFIS_ASSIGN_OR_RETURN(std::vector<double> buffers,
                           ParseList(buffer_csv, "buffer"));
    EPFIS_ASSIGN_OR_RETURN(Dataset * dataset, Find(name));
    TableShape shape;
    shape.table_pages = dataset->num_pages();
    shape.table_records = dataset->num_records();

    // One snapshot, one name resolution, one EstimateBatch call for the
    // whole sigma x buffer cross product — the serving-path idiom.
    std::shared_ptr<const CatalogSnapshot> snapshot =
        catalog_.stats().snapshot();
    CatalogSnapshot::Handle handle = snapshot->Resolve(name + ".key");
    std::vector<BatchProbe> probes;
    probes.reserve(sigmas.size() * buffers.size());
    for (double sigma : sigmas) {
      for (double buffer : buffers) {
        ScanSpec scan;
        scan.sigma = sigma;
        scan.sargable_selectivity = sargable;
        scan.buffer_pages = buffer < 0 ? 0 : static_cast<uint64_t>(buffer);
        probes.push_back(BatchProbe{handle, scan, shape});
      }
    }
    std::vector<CatalogEstimate> results(probes.size());
    EPFIS_RETURN_IF_ERROR(
        EstIo::EstimateBatch(*snapshot, probes, results));

    TablePrinter table({"sigma", "buffer", "estimated F", "source"});
    for (size_t i = 0; i < probes.size(); ++i) {
      const char* source = "lru-fit";
      if (results[i].source == EstimateSource::kFormulaFallback) {
        source = "DEGRADED";
      } else if (results[i].source == EstimateSource::kRejected) {
        source = "REJECTED";
      }
      table.AddRow()
          .Cell(probes[i].scan.sigma, 3)
          .Cell(probes[i].scan.buffer_pages)
          .Cell(results[i].fetches, 1)
          .Cell(source);
    }
    table.Print(std::cout);
    return Status::Ok();
  }

  Status Save(std::istringstream& args) {
    std::string path;
    if (!(args >> path)) {
      return Status::InvalidArgument("usage: save PATH [v2|v3]");
    }
    std::string format = "v2";
    args >> format;
    if (format == "v3") {
      EPFIS_RETURN_IF_ERROR(catalog_.stats().SaveToFileV3(path));
    } else if (format == "v2") {
      EPFIS_RETURN_IF_ERROR(catalog_.stats().SaveToFile(path));
    } else {
      return Status::InvalidArgument("save: format must be v2 or v3");
    }
    std::cout << "saved " << catalog_.stats().size() << " entries to "
              << path << " (" << format << ")\n";
    return Status::Ok();
  }

  Status CatalogCmd(std::istringstream& args) {
    std::string verb;
    if (!(args >> verb) || verb != "convert") {
      return Status::InvalidArgument("usage: catalog convert SRC DST [v2|v3]");
    }
    std::string src, dst;
    if (!(args >> src >> dst)) {
      return Status::InvalidArgument("usage: catalog convert SRC DST [v2|v3]");
    }
    std::string format = "v3";
    args >> format;
    if (format != "v2" && format != "v3") {
      return Status::InvalidArgument(
          "catalog convert: format must be v2 or v3");
    }
    // Round-trip through a scratch catalog: SRC may be any loadable
    // version (the load sniffs v3 magic, else parses v1/v2 text). Strict
    // load — converting silently past corrupt entries would launder them.
    StatsCatalog scratch;
    EPFIS_RETURN_IF_ERROR(scratch.LoadFromFile(src));
    EPFIS_RETURN_IF_ERROR(format == "v3" ? scratch.SaveToFileV3(dst)
                                         : scratch.SaveToFile(dst));
    std::cout << "converted " << src << " -> " << dst << " (" << format
              << ", " << scratch.size() << " entries)\n";
    return Status::Ok();
  }

  Status Load(std::istringstream& args) {
    std::string path;
    if (!(args >> path)) return Status::InvalidArgument("usage: load PATH");
    EPFIS_ASSIGN_OR_RETURN(CatalogLoadReport report,
                           catalog_.stats().RecoverFromFile(path));
    EPFIS_RETURN_IF_ERROR(catalog_.stats().Publish());
    std::cout << "loaded " << path << " (v" << report.format_version
              << "): " << report.entries_loaded << " entries, "
              << report.entries_quarantined << " quarantined ("
              << report.checksum_failures << " checksum failures)\n";
    for (const std::string& reason : report.quarantine_reasons) {
      std::cout << "  quarantined: " << reason << '\n';
    }
    return Status::Ok();
  }

  Status Explain(std::istringstream& args) {
    std::string name;
    int64_t lo, hi;
    uint64_t buffer;
    if (!(args >> name >> lo >> hi >> buffer)) {
      return Status::InvalidArgument(
          "usage: explain NAME lo hi buffer [sorted]");
    }
    std::string sorted;
    args >> sorted;
    Query query;
    query.table = name;
    query.column = 0;
    query.range = KeyRange::Closed(lo, hi);
    query.estimate_sigma = true;
    query.require_sorted = (sorted == "sorted");
    AccessPathOptimizer optimizer(&catalog_);
    EPFIS_ASSIGN_OR_RETURN(std::vector<AccessPlan> plans,
                           optimizer.EnumeratePlans(query, buffer));
    for (size_t i = 0; i < plans.size(); ++i) {
      std::cout << (i == 0 ? "-> " : "   ") << plans[i].ToString() << '\n';
    }
    return Status::Ok();
  }

  Status Run(std::istringstream& args) {
    std::string name;
    int64_t lo, hi;
    uint64_t buffer;
    if (!(args >> name >> lo >> hi >> buffer)) {
      return Status::InvalidArgument("usage: run NAME lo hi buffer");
    }
    EPFIS_ASSIGN_OR_RETURN(Dataset * dataset, Find(name));
    KeyRange range = KeyRange::Closed(lo, hi);

    auto index_pool = dataset->MakeDataPool(buffer);
    EPFIS_ASSIGN_OR_RETURN(
        IndexScanResult index_run,
        RunIndexScan(*dataset->index(), *dataset->table(), index_pool.get(),
                     range));
    auto table_pool = dataset->MakeDataPool(buffer);
    EPFIS_ASSIGN_OR_RETURN(
        TableScanResult table_run,
        RunTableScan(*dataset->table(), table_pool.get(), range, 0));

    TablePrinter table({"plan", "records", "page fetches"});
    table.AddRow()
        .Cell("index scan")
        .Cell(index_run.records_fetched)
        .Cell(index_run.data_page_fetches);
    table.AddRow()
        .Cell("table scan")
        .Cell(static_cast<uint64_t>(table_run.records_qualifying))
        .Cell(table_run.pages_fetched);
    table.Print(std::cout);
    return Status::Ok();
  }

  std::map<std::string, std::unique_ptr<Dataset>> datasets_;
  Catalog catalog_;
};

}  // namespace

int main() {
  std::cout << "epfis shell — type 'help' for commands\n";
  Shell shell;
  return shell.Loop(std::cin);
}
