// Access-path selection: the paper's motivating use case (§2).
//
// A cost-based optimizer must choose between a table scan and a partial
// index scan; the right answer depends on the selectivity AND the buffer
// size. This example builds an unclustered table, collects EPFIS
// statistics, then sweeps (sigma, B) showing where the optimizer's choice
// flips — and validates a few cells against physically executed plans.
//
// Build & run:  ./build/examples/access_path_selection

#include <iostream>

#include "catalog/catalog.h"
#include "epfis/epfis.h"
#include "exec/index_scan.h"
#include "exec/optimizer.h"
#include "exec/table_scan.h"
#include "util/table_printer.h"
#include "workload/data_gen.h"
#include "workload/scan_gen.h"

using namespace epfis;

int main() {
  SyntheticSpec spec;
  spec.name = "events";
  spec.num_records = 60'000;
  spec.num_distinct = 600;
  spec.records_per_page = 40;
  spec.window_fraction = 0.6;  // Quite unclustered.
  spec.seed = 13;
  auto dataset_or = GenerateSynthetic(spec);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status().ToString() << '\n';
    return 1;
  }
  Dataset& dataset = **dataset_or;

  Catalog catalog;
  (void)catalog.RegisterTable("events", dataset.table());
  (void)catalog.RegisterIndex("events.key", "events", 0, dataset.index());
  auto trace = dataset.FullIndexPageTrace().value();
  catalog.stats().Put(RunLruFit(trace, dataset.num_pages(),
                                dataset.num_distinct(), "events.key")
                          .value());

  AccessPathOptimizer optimizer(&catalog);
  ScanGenerator scans(&dataset, 3);

  std::cout << "Plan choice grid (table T = " << dataset.num_pages()
            << " pages):\n\n";
  TablePrinter grid({"sigma \\ B", "25", "125", "500", "1250"});
  const uint64_t kBuffers[] = {25, 125, 500, 1250};
  for (double fraction : {0.005, 0.02, 0.08, 0.4, 0.9}) {
    ScanRange scan = scans.FromFraction(fraction);
    grid.AddRow().Cell(scan.sigma, 3);
    for (uint64_t buffer : kBuffers) {
      Query query;
      query.table = "events";
      query.column = 0;
      query.range = KeyRange::Closed(scan.lo_key, scan.hi_key);
      query.sigma = scan.sigma;
      auto plan = optimizer.Choose(query, buffer);
      if (!plan.ok()) {
        std::cerr << plan.status().ToString() << '\n';
        return 1;
      }
      grid.Cell(plan->type == AccessPlan::Type::kIndexScan ? "index"
                                                           : "table");
    }
  }
  grid.Print(std::cout);
  std::cout << "\nLow selectivity favors the index everywhere; large "
               "unclustered scans\nneed a big buffer before the index "
               "beats a sequential table scan.\n\n";

  // Validate one flip against real executions.
  ScanRange scan = scans.FromFraction(0.4);
  Query query;
  query.table = "events";
  query.column = 0;
  query.range = KeyRange::Closed(scan.lo_key, scan.hi_key);
  query.sigma = scan.sigma;

  std::cout << "Validation at sigma = " << scan.sigma << ":\n";
  TablePrinter check({"buffer", "chosen plan", "est fetches",
                      "measured index F", "measured table F"});
  for (uint64_t buffer : {25ULL, 1250ULL}) {
    auto plan = optimizer.Choose(query, buffer).value();
    auto index_pool = dataset.MakeDataPool(buffer);
    auto index_run = RunIndexScan(*dataset.index(), *dataset.table(),
                                  index_pool.get(), query.range)
                         .value();
    auto table_pool = dataset.MakeDataPool(buffer);
    auto table_run =
        RunTableScan(*dataset.table(), table_pool.get(), query.range, 0)
            .value();
    check.AddRow()
        .Cell(buffer)
        .Cell(plan.type == AccessPlan::Type::kIndexScan ? "index scan"
                                                        : "table scan")
        .Cell(plan.estimated_fetches, 1)
        .Cell(index_run.data_page_fetches)
        .Cell(table_run.pages_fetched);
  }
  check.Print(std::cout);
  return 0;
}
