// Buffer sizing / capacity planning with FPF curves.
//
// Figure 1 of the paper shows how differently indexes respond to buffer
// size. A DBA (or self-tuning advisor) can read the knee of each index's
// FPF curve to decide how much buffer an index scan actually needs: beyond
// the knee, more memory buys almost nothing.
//
// This example synthesizes three indexes with different clustering, prints
// their normalized FPF curves, and computes for each the smallest buffer
// that achieves 95% of the maximum possible fetch savings.
//
// Build & run:  ./build/examples/buffer_sizing

#include <algorithm>
#include <iostream>

#include "epfis/epfis.h"
#include "util/table_printer.h"
#include "workload/data_gen.h"

using namespace epfis;

int main() {
  struct IndexUnderStudy {
    const char* name;
    double window;
    double noise;
  };
  const IndexUnderStudy kIndexes[] = {
      {"clustered (K=0)", 0.0, 0.0},
      {"mild (K=0.1)", 0.1, 0.05},
      {"scattered (K=1)", 1.0, 0.05},
  };

  TablePrinter summary({"index", "C", "F at Bmin", "F at T",
                        "95%-savings buffer", "as % of T"});

  for (const IndexUnderStudy& idx : kIndexes) {
    SyntheticSpec spec;
    spec.name = idx.name;
    spec.num_records = 40'000;
    spec.num_distinct = 400;
    spec.records_per_page = 40;  // T = 1000.
    spec.window_fraction = idx.window;
    spec.noise = idx.noise;
    spec.seed = 99;
    auto dataset = GenerateSynthetic(spec);
    if (!dataset.ok()) {
      std::cerr << dataset.status().ToString() << '\n';
      return 1;
    }
    auto trace = (*dataset)->FullIndexPageTrace().value();
    IndexStats stats = RunLruFit(trace, (*dataset)->num_pages(),
                                 (*dataset)->num_distinct(), idx.name)
                           .value();

    // Walk the fitted curve to find the 95%-of-savings buffer size.
    double f_min_buffer = stats.FullScanFetches(
        static_cast<double>(stats.b_min));
    double f_max_buffer = stats.FullScanFetches(
        static_cast<double>(stats.b_max));
    double target = f_min_buffer - 0.95 * (f_min_buffer - f_max_buffer);
    uint64_t knee = stats.b_max;
    for (uint64_t b = stats.b_min; b <= stats.b_max; ++b) {
      if (stats.FullScanFetches(static_cast<double>(b)) <= target) {
        knee = b;
        break;
      }
    }

    summary.AddRow()
        .Cell(std::string(idx.name))
        .Cell(stats.clustering, 3)
        .Cell(f_min_buffer, 0)
        .Cell(f_max_buffer, 0)
        .Cell(knee)
        .Cell(100.0 * static_cast<double>(knee) /
                  static_cast<double>(stats.b_max),
              1);

    // Show a condensed normalized curve, Figure-1 style.
    std::cout << "FPF curve for " << idx.name << " (C = " << stats.clustering
              << "):\n";
    TablePrinter curve({"B/T", "F/T"});
    for (double frac : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      double b = frac * static_cast<double>(stats.b_max);
      curve.AddRow().Cell(frac, 2).Cell(
          stats.FullScanFetches(b) / static_cast<double>(stats.b_max), 2);
    }
    curve.Print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Buffer recommendation summary:\n";
  summary.Print(std::cout);
  std::cout << "\nClustered indexes need almost no buffer; scattered ones "
               "only stop\nthrashing once the pool approaches the table "
               "size — exactly the\nspread Figure 1 of the paper shows.\n";
  return 0;
}
