// Statistics lifecycle: collection, catalog persistence, staleness.
//
// LRU-Fit is designed to run "as part of the statistics collection
// routines in the database ... called periodically" (§4.1). This example
// walks that lifecycle:
//
//   1. Collect statistics for two indexes concurrently with RunLruFitBatch
//      (the production shape: a statistics daemon refreshing every index
//      in one call) and persist them to a catalog file (the line-segment
//      coordinates exactly as §4.1 stores them).
//   2. Restart: load the catalog in a fresh process-like state and verify
//      estimates are identical.
//   3. Mutate the table (append a burst of records out of key order) and
//      show how stale statistics drift from measured reality until
//      LRU-Fit is re-run.
//
// Build & run:  ./build/examples/statistics_lifecycle

#include <cstdio>
#include <iostream>
#include <memory>

#include "catalog/stats_catalog.h"
#include "epfis/epfis.h"
#include "exec/index_scan.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "workload/data_gen.h"

using namespace epfis;

namespace {

Result<IndexStats> Collect(Dataset& dataset, const std::string& name) {
  EPFIS_ASSIGN_OR_RETURN(std::vector<PageId> trace,
                         dataset.FullIndexPageTrace());
  return RunLruFit(trace, dataset.num_pages(), dataset.num_distinct(), name);
}

Result<LruFitJob> MakeCollectionJob(Dataset& dataset,
                                    const std::string& name) {
  EPFIS_ASSIGN_OR_RETURN(std::vector<PageId> trace,
                         dataset.FullIndexPageTrace());
  LruFitJob job;
  job.trace = std::make_unique<VectorTraceSource>(std::move(trace));
  job.table_pages = dataset.num_pages();
  job.distinct_keys = dataset.num_distinct();
  job.index_name = name;
  return job;
}

}  // namespace

int main() {
  SyntheticSpec spec;
  spec.name = "ledger";
  spec.num_records = 30'000;
  spec.num_distinct = 300;
  spec.records_per_page = 30;
  spec.window_fraction = 0.1;
  spec.seed = 31;
  auto dataset_or = GenerateSynthetic(spec);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status().ToString() << '\n';
    return 1;
  }
  Dataset& dataset = **dataset_or;

  SyntheticSpec orders_spec;
  orders_spec.name = "orders";
  orders_spec.num_records = 20'000;
  orders_spec.num_distinct = 500;
  orders_spec.records_per_page = 25;
  orders_spec.window_fraction = 0.4;
  orders_spec.seed = 32;
  auto orders_or = GenerateSynthetic(orders_spec);
  if (!orders_or.ok()) {
    std::cerr << orders_or.status().ToString() << '\n';
    return 1;
  }

  // --- 1. Collect both indexes in one batch and persist. ---
  StatsCatalog catalog;
  {
    std::vector<LruFitJob> jobs;
    for (auto& [ds, name] :
         {std::pair<Dataset*, const char*>{&dataset, "ledger.key"},
          std::pair<Dataset*, const char*>{&**orders_or, "orders.key"}}) {
      auto job = MakeCollectionJob(*ds, name);
      if (!job.ok()) {
        std::cerr << job.status().ToString() << '\n';
        return 1;
      }
      jobs.push_back(std::move(*job));
    }
    ThreadPool pool(2);
    LruFitBatchResult batch =
        RunLruFitBatch(std::move(jobs), pool, &catalog);
    for (const Status& s : batch.statuses) {
      if (!s.ok()) {
        std::cerr << s.ToString() << '\n';
        return 1;
      }
    }
    std::cout << "batch-collected " << batch.num_ok
              << " indexes on 2 worker threads\n";
  }
  auto stats_or = catalog.Get("ledger.key");
  if (!stats_or.ok()) {
    std::cerr << stats_or.status().ToString() << '\n';
    return 1;
  }
  const std::string path = "/tmp/epfis_example_catalog.txt";
  if (Status s = catalog.SaveToFile(path); !s.ok()) {
    std::cerr << s.ToString() << '\n';
    return 1;
  }
  std::cout << "saved statistics catalog to " << path << " ("
            << catalog.size() << " indexes; ledger.key: "
            << stats_or->fpf->knots().size() << " knot pairs, C = "
            << stats_or->clustering << ")\n";

  // --- 2. "Restart" and verify identical estimates. ---
  StatsCatalog reloaded;
  if (Status s = reloaded.LoadFromFile(path); !s.ok()) {
    std::cerr << s.ToString() << '\n';
    return 1;
  }
  IndexStats fresh = catalog.Get("ledger.key").value();
  IndexStats restored = reloaded.Get("ledger.key").value();
  auto estimate = [](const IndexStats& s, const ScanSpec& scan) {
    return EstIo::Estimate(s, scan).value();
  };
  bool identical = true;
  for (double sigma : {0.01, 0.2, 0.9}) {
    for (uint64_t b : {30ULL, 300ULL, 900ULL}) {
      ScanSpec scan{sigma, 1.0, b};
      if (estimate(fresh, scan) != estimate(restored, scan)) {
        identical = false;
      }
    }
  }
  std::cout << "estimates after catalog round-trip: "
            << (identical ? "bit-identical" : "DIFFER (bug!)") << "\n\n";

  // --- 3. Staleness: append 40% more records, scattered. ---
  std::cout << "appending 12000 scattered records (no re-collection)...\n";
  {
    Rng rng(77);
    TableHeap* heap = dataset.table();
    // Append fresh pages and scatter new records of random keys onto them.
    uint32_t first_new = heap->num_pages();
    for (int p = 0; p < 400; ++p) (void)heap->AppendPage();
    for (int i = 0; i < 12000; ++i) {
      int64_t key = 1 + static_cast<int64_t>(rng.NextBounded(300));
      uint32_t page =
          first_new + static_cast<uint32_t>(rng.NextBounded(400));
      auto rid = heap->InsertIntoPage(page, Record({key}));
      if (rid.ok()) {
        (void)dataset.index()->Insert(IndexEntry{key, *rid});
      }
    }
    (void)dataset.data_pool()->FlushAll();
    (void)dataset.index_pool()->FlushAll();
  }

  TablePrinter drift({"statistics", "est F (sigma=0.2, B=300)",
                      "measured F", "err %"});
  auto measure = [&]() -> double {
    // Keys 1..60 is ~20% of the key domain (not exactly of the records,
    // but close enough for the drift illustration).
    auto pool = dataset.MakeDataPool(300);
    auto run = RunIndexScan(*dataset.index(), *dataset.table(), pool.get(),
                            KeyRange::Closed(1, 60));
    return run.ok() ? static_cast<double>(run->data_page_fetches) : -1;
  };
  double measured = measure();

  ScanSpec probe{0.2, 1.0, 300};
  double stale_est = estimate(restored, probe);
  drift.AddRow()
      .Cell("stale (pre-append)")
      .Cell(stale_est, 1)
      .Cell(measured, 0)
      .Cell(100.0 * (stale_est - measured) / measured, 1);

  auto refreshed_or = Collect(dataset, "ledger.key");
  if (!refreshed_or.ok()) {
    std::cerr << refreshed_or.status().ToString() << '\n';
    return 1;
  }
  catalog.Put(*refreshed_or);
  double fresh_est = estimate(*refreshed_or, probe);
  drift.AddRow()
      .Cell("re-collected")
      .Cell(fresh_est, 1)
      .Cell(measured, 0)
      .Cell(100.0 * (fresh_est - measured) / measured, 1);

  drift.Print(std::cout);
  std::cout << "\nre-running LRU-Fit after bulk changes pulls the estimate "
               "back toward\nthe measured cost — why the paper runs it "
               "with the periodic statistics\ncollection routines.\n";
  std::remove(path.c_str());
  return 0;
}
