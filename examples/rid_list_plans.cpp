// RID-list plans and index ANDing — the §6 "future work" extension.
//
// The paper's core setting (§2) assumes records are fetched in index
// order, with no RID-list sort/union/intersection. This example enables
// the extension: it builds a table with TWO indexes, runs a conjunctive
// query three ways (ordered index scan, RID-sort fetch, index-AND), and
// shows the optimizer picking between them.
//
// Build & run:  ./build/examples/rid_list_plans

#include <iostream>

#include "catalog/catalog.h"
#include "epfis/epfis.h"
#include "exec/index_scan.h"
#include "exec/multi_index.h"
#include "exec/optimizer.h"
#include "exec/rid_list.h"
#include "util/table_printer.h"
#include "workload/data_gen.h"

using namespace epfis;

int main() {
  SyntheticSpec spec;
  spec.name = "sales";
  spec.num_records = 50'000;
  spec.num_distinct = 500;       // Primary column: "day".
  spec.secondary_distinct = 40;  // Secondary column: "region".
  spec.records_per_page = 40;
  spec.window_fraction = 0.5;  // Unclustered: fetch order matters a lot.
  spec.seed = 23;
  auto dataset_or = GenerateSynthetic(spec);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status().ToString() << '\n';
    return 1;
  }
  Dataset& dataset = **dataset_or;
  double n = static_cast<double>(dataset.num_records());
  double t = static_cast<double>(dataset.num_pages());

  // Query: day in [1, 50] AND region in [1, 10], no ORDER BY.
  KeyRange day_range = KeyRange::Closed(1, 50);
  KeyRange region_range = KeyRange::Closed(1, 10);
  double sigma_day = static_cast<double>(dataset.RecordsInRange(1, 50)) / n;
  double sigma_region =
      static_cast<double>(dataset.SecondaryRecordsInRange(1, 10)) / n;
  std::cout << "query: day in [1,50] (sigma=" << sigma_day
            << ") AND region in [1,10] (sigma=" << sigma_region << ")\n\n";

  const uint64_t kBuffer = 60;  // Small pool: ordered scans thrash.

  // Plan A: ordered index scan on day, residual filter on region.
  auto pool_a = dataset.MakeDataPool(kBuffer);
  auto scan = RunIndexScan(*dataset.index(), *dataset.table(), pool_a.get(),
                           day_range)
                  .value();

  // Plan B: RID-sort fetch from the day index (region still residual).
  RidList day_rids =
      RidList::FromIndexRange(*dataset.index(), day_range).value();
  auto pool_b = dataset.MakeDataPool(kBuffer);
  auto rid_fetch =
      FetchRidList(*dataset.table(), pool_b.get(), day_rids).value();

  // Plan C: index-AND both predicates, fetch only true matches.
  auto pool_c = dataset.MakeDataPool(kBuffer);
  auto anded = RunMultiIndexScan(*dataset.index(), day_range,
                                 *dataset.index2(), region_range,
                                 IndexCombineOp::kAnd, *dataset.table(),
                                 pool_c.get())
                   .value();

  TablePrinter table({"plan", "records fetched", "data page fetches"});
  table.AddRow()
      .Cell("A: ordered scan on day")
      .Cell(scan.records_fetched)
      .Cell(scan.data_page_fetches);
  table.AddRow()
      .Cell("B: RID-sort fetch (day)")
      .Cell(rid_fetch.records_fetched)
      .Cell(rid_fetch.data_page_fetches);
  table.AddRow()
      .Cell("C: index-AND day&region")
      .Cell(anded.rids_combined)
      .Cell(anded.data_page_fetches);
  table.Print(std::cout);
  std::cout << "\nestimates: RID-sort "
            << EstimateRidFetchPages(n, t, static_cast<double>(day_rids.size()))
            << " pages, index-AND "
            << EstimateMultiIndexFetchPages(n, t, sigma_day, sigma_region,
                                            IndexCombineOp::kAnd)
            << " pages\n\n";

  // The optimizer view: enable RID plans and watch the choice change with
  // the buffer.
  Catalog catalog;
  (void)catalog.RegisterTable("sales", dataset.table());
  (void)catalog.RegisterIndex("sales.day", "sales", 0, dataset.index());
  auto full_trace = dataset.FullIndexPageTrace().value();
  catalog.stats().Put(RunLruFit(full_trace, dataset.num_pages(),
                                dataset.num_distinct(), "sales.day")
                          .value());
  OptimizerOptions opt;
  opt.consider_rid_list = true;
  AccessPathOptimizer optimizer(&catalog, opt);

  Query query;
  query.table = "sales";
  query.column = 0;
  query.range = day_range;
  query.sigma = sigma_day;

  std::cout << "optimizer choice vs buffer (RID plans enabled):\n";
  TablePrinter choices({"buffer", "chosen plan", "est fetches"});
  for (uint64_t buffer : {20ULL, 200ULL, 1250ULL}) {
    AccessPlan plan = optimizer.Choose(query, buffer).value();
    choices.AddRow()
        .Cell(buffer)
        .Cell(plan.ToString().substr(0, plan.ToString().find(' ')))
        .Cell(plan.estimated_fetches, 1);
  }
  choices.Print(std::cout);
  std::cout << "\nwith ORDER BY day, the RID plan pays a sort and the "
               "ordered index scan\nwins back the large-buffer regime:\n";
  query.require_sorted = true;
  TablePrinter ordered({"buffer", "chosen plan", "total cost"});
  for (uint64_t buffer : {20ULL, 200ULL, 1250ULL}) {
    AccessPlan plan = optimizer.Choose(query, buffer).value();
    ordered.AddRow()
        .Cell(buffer)
        .Cell(plan.ToString().substr(0, plan.ToString().find(' ')))
        .Cell(plan.total_cost, 1);
  }
  ordered.Print(std::cout);
  return 0;
}
