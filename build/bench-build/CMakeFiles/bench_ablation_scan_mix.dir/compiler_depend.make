# Empty compiler generated dependencies file for bench_ablation_scan_mix.
# This may be replaced when dependencies are built.
