file(REMOVE_RECURSE
  "../bench/bench_ablation_scan_mix"
  "../bench/bench_ablation_scan_mix.pdb"
  "CMakeFiles/bench_ablation_scan_mix.dir/bench_ablation_scan_mix.cc.o"
  "CMakeFiles/bench_ablation_scan_mix.dir/bench_ablation_scan_mix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scan_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
