file(REMOVE_RECURSE
  "../bench/bench_ablation_sargable"
  "../bench/bench_ablation_sargable.pdb"
  "CMakeFiles/bench_ablation_sargable.dir/bench_ablation_sargable.cc.o"
  "CMakeFiles/bench_ablation_sargable.dir/bench_ablation_sargable.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sargable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
