# Empty dependencies file for bench_ablation_sargable.
# This may be replaced when dependencies are built.
