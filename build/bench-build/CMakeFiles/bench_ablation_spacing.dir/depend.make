# Empty dependencies file for bench_ablation_spacing.
# This may be replaced when dependencies are built.
