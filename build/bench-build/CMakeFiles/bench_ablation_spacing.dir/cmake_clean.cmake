file(REMOVE_RECURSE
  "../bench/bench_ablation_spacing"
  "../bench/bench_ablation_spacing.pdb"
  "CMakeFiles/bench_ablation_spacing.dir/bench_ablation_spacing.cc.o"
  "CMakeFiles/bench_ablation_spacing.dir/bench_ablation_spacing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
