file(REMOVE_RECURSE
  "../bench/bench_ablation_segments"
  "../bench/bench_ablation_segments.pdb"
  "CMakeFiles/bench_ablation_segments.dir/bench_ablation_segments.cc.o"
  "CMakeFiles/bench_ablation_segments.dir/bench_ablation_segments.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
