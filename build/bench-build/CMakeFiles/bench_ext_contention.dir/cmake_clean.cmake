file(REMOVE_RECURSE
  "../bench/bench_ext_contention"
  "../bench/bench_ext_contention.pdb"
  "CMakeFiles/bench_ext_contention.dir/bench_ext_contention.cc.o"
  "CMakeFiles/bench_ext_contention.dir/bench_ext_contention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
