file(REMOVE_RECURSE
  "../bench/bench_ablation_metric"
  "../bench/bench_ablation_metric.pdb"
  "CMakeFiles/bench_ablation_metric.dir/bench_ablation_metric.cc.o"
  "CMakeFiles/bench_ablation_metric.dir/bench_ablation_metric.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
