file(REMOVE_RECURSE
  "../bench/bench_ext_ridlist"
  "../bench/bench_ext_ridlist.pdb"
  "CMakeFiles/bench_ext_ridlist.dir/bench_ext_ridlist.cc.o"
  "CMakeFiles/bench_ext_ridlist.dir/bench_ext_ridlist.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ridlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
