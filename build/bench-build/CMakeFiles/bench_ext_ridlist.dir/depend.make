# Empty dependencies file for bench_ext_ridlist.
# This may be replaced when dependencies are built.
