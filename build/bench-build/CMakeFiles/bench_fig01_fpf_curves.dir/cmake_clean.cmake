file(REMOVE_RECURSE
  "../bench/bench_fig01_fpf_curves"
  "../bench/bench_fig01_fpf_curves.pdb"
  "CMakeFiles/bench_fig01_fpf_curves.dir/bench_fig01_fpf_curves.cc.o"
  "CMakeFiles/bench_fig01_fpf_curves.dir/bench_fig01_fpf_curves.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_fpf_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
