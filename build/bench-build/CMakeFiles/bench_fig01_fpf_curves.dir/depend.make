# Empty dependencies file for bench_fig01_fpf_curves.
# This may be replaced when dependencies are built.
