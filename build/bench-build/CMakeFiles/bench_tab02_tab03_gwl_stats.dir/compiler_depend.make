# Empty compiler generated dependencies file for bench_tab02_tab03_gwl_stats.
# This may be replaced when dependencies are built.
