file(REMOVE_RECURSE
  "../bench/bench_tab02_tab03_gwl_stats"
  "../bench/bench_tab02_tab03_gwl_stats.pdb"
  "CMakeFiles/bench_tab02_tab03_gwl_stats.dir/bench_tab02_tab03_gwl_stats.cc.o"
  "CMakeFiles/bench_tab02_tab03_gwl_stats.dir/bench_tab02_tab03_gwl_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_tab03_gwl_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
