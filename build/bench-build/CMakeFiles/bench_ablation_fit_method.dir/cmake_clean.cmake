file(REMOVE_RECURSE
  "../bench/bench_ablation_fit_method"
  "../bench/bench_ablation_fit_method.pdb"
  "CMakeFiles/bench_ablation_fit_method.dir/bench_ablation_fit_method.cc.o"
  "CMakeFiles/bench_ablation_fit_method.dir/bench_ablation_fit_method.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fit_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
