# Empty dependencies file for bench_ablation_fit_method.
# This may be replaced when dependencies are built.
