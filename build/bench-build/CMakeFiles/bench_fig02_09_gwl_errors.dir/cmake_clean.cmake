file(REMOVE_RECURSE
  "../bench/bench_fig02_09_gwl_errors"
  "../bench/bench_fig02_09_gwl_errors.pdb"
  "CMakeFiles/bench_fig02_09_gwl_errors.dir/bench_fig02_09_gwl_errors.cc.o"
  "CMakeFiles/bench_fig02_09_gwl_errors.dir/bench_fig02_09_gwl_errors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_09_gwl_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
