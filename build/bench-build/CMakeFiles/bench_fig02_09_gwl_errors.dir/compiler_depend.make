# Empty compiler generated dependencies file for bench_fig02_09_gwl_errors.
# This may be replaced when dependencies are built.
