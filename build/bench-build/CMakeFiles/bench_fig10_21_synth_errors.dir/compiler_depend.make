# Empty compiler generated dependencies file for bench_fig10_21_synth_errors.
# This may be replaced when dependencies are built.
