# Empty compiler generated dependencies file for epfis_shell.
# This may be replaced when dependencies are built.
