file(REMOVE_RECURSE
  "CMakeFiles/epfis_shell.dir/epfis_shell.cpp.o"
  "CMakeFiles/epfis_shell.dir/epfis_shell.cpp.o.d"
  "epfis_shell"
  "epfis_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epfis_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
