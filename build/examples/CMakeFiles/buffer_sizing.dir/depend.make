# Empty dependencies file for buffer_sizing.
# This may be replaced when dependencies are built.
