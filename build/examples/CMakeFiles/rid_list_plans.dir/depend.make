# Empty dependencies file for rid_list_plans.
# This may be replaced when dependencies are built.
