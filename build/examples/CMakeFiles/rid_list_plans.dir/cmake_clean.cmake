file(REMOVE_RECURSE
  "CMakeFiles/rid_list_plans.dir/rid_list_plans.cpp.o"
  "CMakeFiles/rid_list_plans.dir/rid_list_plans.cpp.o.d"
  "rid_list_plans"
  "rid_list_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rid_list_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
