# Empty dependencies file for statistics_lifecycle.
# This may be replaced when dependencies are built.
