file(REMOVE_RECURSE
  "CMakeFiles/statistics_lifecycle.dir/statistics_lifecycle.cpp.o"
  "CMakeFiles/statistics_lifecycle.dir/statistics_lifecycle.cpp.o.d"
  "statistics_lifecycle"
  "statistics_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistics_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
