# Empty compiler generated dependencies file for access_path_selection.
# This may be replaced when dependencies are built.
