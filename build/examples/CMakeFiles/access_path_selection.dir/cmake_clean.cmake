file(REMOVE_RECURSE
  "CMakeFiles/access_path_selection.dir/access_path_selection.cpp.o"
  "CMakeFiles/access_path_selection.dir/access_path_selection.cpp.o.d"
  "access_path_selection"
  "access_path_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_path_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
