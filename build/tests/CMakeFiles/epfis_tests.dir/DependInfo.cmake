
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/baselines_test.cc" "tests/CMakeFiles/epfis_tests.dir/baselines/baselines_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/baselines/baselines_test.cc.o.d"
  "/root/repo/tests/buffer/buffer_pool_test.cc" "tests/CMakeFiles/epfis_tests.dir/buffer/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/buffer/buffer_pool_test.cc.o.d"
  "/root/repo/tests/buffer/clock_replacer_test.cc" "tests/CMakeFiles/epfis_tests.dir/buffer/clock_replacer_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/buffer/clock_replacer_test.cc.o.d"
  "/root/repo/tests/buffer/lru_replacer_test.cc" "tests/CMakeFiles/epfis_tests.dir/buffer/lru_replacer_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/buffer/lru_replacer_test.cc.o.d"
  "/root/repo/tests/buffer/simulators_test.cc" "tests/CMakeFiles/epfis_tests.dir/buffer/simulators_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/buffer/simulators_test.cc.o.d"
  "/root/repo/tests/catalog/catalog_test.cc" "tests/CMakeFiles/epfis_tests.dir/catalog/catalog_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/catalog/catalog_test.cc.o.d"
  "/root/repo/tests/catalog/histogram_persistence_test.cc" "tests/CMakeFiles/epfis_tests.dir/catalog/histogram_persistence_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/catalog/histogram_persistence_test.cc.o.d"
  "/root/repo/tests/catalog/histogram_test.cc" "tests/CMakeFiles/epfis_tests.dir/catalog/histogram_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/catalog/histogram_test.cc.o.d"
  "/root/repo/tests/epfis/est_io_property_test.cc" "tests/CMakeFiles/epfis_tests.dir/epfis/est_io_property_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/epfis/est_io_property_test.cc.o.d"
  "/root/repo/tests/epfis/est_io_test.cc" "tests/CMakeFiles/epfis_tests.dir/epfis/est_io_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/epfis/est_io_test.cc.o.d"
  "/root/repo/tests/epfis/fpf_curve_test.cc" "tests/CMakeFiles/epfis_tests.dir/epfis/fpf_curve_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/epfis/fpf_curve_test.cc.o.d"
  "/root/repo/tests/epfis/lru_fit_test.cc" "tests/CMakeFiles/epfis_tests.dir/epfis/lru_fit_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/epfis/lru_fit_test.cc.o.d"
  "/root/repo/tests/epfis/trace_io_test.cc" "tests/CMakeFiles/epfis_tests.dir/epfis/trace_io_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/epfis/trace_io_test.cc.o.d"
  "/root/repo/tests/exec/exec_test.cc" "tests/CMakeFiles/epfis_tests.dir/exec/exec_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/exec/exec_test.cc.o.d"
  "/root/repo/tests/exec/external_sort_test.cc" "tests/CMakeFiles/epfis_tests.dir/exec/external_sort_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/exec/external_sort_test.cc.o.d"
  "/root/repo/tests/exec/optimizer_order_test.cc" "tests/CMakeFiles/epfis_tests.dir/exec/optimizer_order_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/exec/optimizer_order_test.cc.o.d"
  "/root/repo/tests/exec/optimizer_ridlist_test.cc" "tests/CMakeFiles/epfis_tests.dir/exec/optimizer_ridlist_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/exec/optimizer_ridlist_test.cc.o.d"
  "/root/repo/tests/exec/optimizer_test.cc" "tests/CMakeFiles/epfis_tests.dir/exec/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/exec/optimizer_test.cc.o.d"
  "/root/repo/tests/exec/rid_list_test.cc" "tests/CMakeFiles/epfis_tests.dir/exec/rid_list_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/exec/rid_list_test.cc.o.d"
  "/root/repo/tests/harness/contention_test.cc" "tests/CMakeFiles/epfis_tests.dir/harness/contention_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/harness/contention_test.cc.o.d"
  "/root/repo/tests/harness/experiment_test.cc" "tests/CMakeFiles/epfis_tests.dir/harness/experiment_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/harness/experiment_test.cc.o.d"
  "/root/repo/tests/harness/figures_test.cc" "tests/CMakeFiles/epfis_tests.dir/harness/figures_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/harness/figures_test.cc.o.d"
  "/root/repo/tests/index/btree_corruption_test.cc" "tests/CMakeFiles/epfis_tests.dir/index/btree_corruption_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/index/btree_corruption_test.cc.o.d"
  "/root/repo/tests/index/btree_delete_test.cc" "tests/CMakeFiles/epfis_tests.dir/index/btree_delete_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/index/btree_delete_test.cc.o.d"
  "/root/repo/tests/index/btree_test.cc" "tests/CMakeFiles/epfis_tests.dir/index/btree_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/index/btree_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/epfis_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/misc_edge_cases_test.cc" "tests/CMakeFiles/epfis_tests.dir/misc_edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/misc_edge_cases_test.cc.o.d"
  "/root/repo/tests/storage/heap_cap_test.cc" "tests/CMakeFiles/epfis_tests.dir/storage/heap_cap_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/storage/heap_cap_test.cc.o.d"
  "/root/repo/tests/storage/storage_test.cc" "tests/CMakeFiles/epfis_tests.dir/storage/storage_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/storage/storage_test.cc.o.d"
  "/root/repo/tests/storage/table_heap_test.cc" "tests/CMakeFiles/epfis_tests.dir/storage/table_heap_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/storage/table_heap_test.cc.o.d"
  "/root/repo/tests/util/fenwick_test.cc" "tests/CMakeFiles/epfis_tests.dir/util/fenwick_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/util/fenwick_test.cc.o.d"
  "/root/repo/tests/util/formulas_test.cc" "tests/CMakeFiles/epfis_tests.dir/util/formulas_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/util/formulas_test.cc.o.d"
  "/root/repo/tests/util/misc_util_test.cc" "tests/CMakeFiles/epfis_tests.dir/util/misc_util_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/util/misc_util_test.cc.o.d"
  "/root/repo/tests/util/piecewise_minimax_test.cc" "tests/CMakeFiles/epfis_tests.dir/util/piecewise_minimax_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/util/piecewise_minimax_test.cc.o.d"
  "/root/repo/tests/util/piecewise_test.cc" "tests/CMakeFiles/epfis_tests.dir/util/piecewise_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/util/piecewise_test.cc.o.d"
  "/root/repo/tests/util/polynomial_test.cc" "tests/CMakeFiles/epfis_tests.dir/util/polynomial_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/util/polynomial_test.cc.o.d"
  "/root/repo/tests/util/random_test.cc" "tests/CMakeFiles/epfis_tests.dir/util/random_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/util/random_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/epfis_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/zipf_test.cc" "tests/CMakeFiles/epfis_tests.dir/util/zipf_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/util/zipf_test.cc.o.d"
  "/root/repo/tests/workload/data_gen_test.cc" "tests/CMakeFiles/epfis_tests.dir/workload/data_gen_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/workload/data_gen_test.cc.o.d"
  "/root/repo/tests/workload/gwl_scan_gen_test.cc" "tests/CMakeFiles/epfis_tests.dir/workload/gwl_scan_gen_test.cc.o" "gcc" "tests/CMakeFiles/epfis_tests.dir/workload/gwl_scan_gen_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/epfis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
