# Empty compiler generated dependencies file for epfis_tests.
# This may be replaced when dependencies are built.
