# Empty dependencies file for epfis.
# This may be replaced when dependencies are built.
