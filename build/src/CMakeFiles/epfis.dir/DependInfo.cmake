
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dc.cc" "src/CMakeFiles/epfis.dir/baselines/dc.cc.o" "gcc" "src/CMakeFiles/epfis.dir/baselines/dc.cc.o.d"
  "/root/repo/src/baselines/estimator.cc" "src/CMakeFiles/epfis.dir/baselines/estimator.cc.o" "gcc" "src/CMakeFiles/epfis.dir/baselines/estimator.cc.o.d"
  "/root/repo/src/baselines/ml.cc" "src/CMakeFiles/epfis.dir/baselines/ml.cc.o" "gcc" "src/CMakeFiles/epfis.dir/baselines/ml.cc.o.d"
  "/root/repo/src/baselines/naive.cc" "src/CMakeFiles/epfis.dir/baselines/naive.cc.o" "gcc" "src/CMakeFiles/epfis.dir/baselines/naive.cc.o.d"
  "/root/repo/src/baselines/ot.cc" "src/CMakeFiles/epfis.dir/baselines/ot.cc.o" "gcc" "src/CMakeFiles/epfis.dir/baselines/ot.cc.o.d"
  "/root/repo/src/baselines/sd.cc" "src/CMakeFiles/epfis.dir/baselines/sd.cc.o" "gcc" "src/CMakeFiles/epfis.dir/baselines/sd.cc.o.d"
  "/root/repo/src/buffer/buffer_pool.cc" "src/CMakeFiles/epfis.dir/buffer/buffer_pool.cc.o" "gcc" "src/CMakeFiles/epfis.dir/buffer/buffer_pool.cc.o.d"
  "/root/repo/src/buffer/clock_replacer.cc" "src/CMakeFiles/epfis.dir/buffer/clock_replacer.cc.o" "gcc" "src/CMakeFiles/epfis.dir/buffer/clock_replacer.cc.o.d"
  "/root/repo/src/buffer/lru_replacer.cc" "src/CMakeFiles/epfis.dir/buffer/lru_replacer.cc.o" "gcc" "src/CMakeFiles/epfis.dir/buffer/lru_replacer.cc.o.d"
  "/root/repo/src/buffer/lru_simulator.cc" "src/CMakeFiles/epfis.dir/buffer/lru_simulator.cc.o" "gcc" "src/CMakeFiles/epfis.dir/buffer/lru_simulator.cc.o.d"
  "/root/repo/src/buffer/policy_simulator.cc" "src/CMakeFiles/epfis.dir/buffer/policy_simulator.cc.o" "gcc" "src/CMakeFiles/epfis.dir/buffer/policy_simulator.cc.o.d"
  "/root/repo/src/buffer/stack_distance.cc" "src/CMakeFiles/epfis.dir/buffer/stack_distance.cc.o" "gcc" "src/CMakeFiles/epfis.dir/buffer/stack_distance.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/epfis.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/epfis.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/histogram.cc" "src/CMakeFiles/epfis.dir/catalog/histogram.cc.o" "gcc" "src/CMakeFiles/epfis.dir/catalog/histogram.cc.o.d"
  "/root/repo/src/catalog/stats_catalog.cc" "src/CMakeFiles/epfis.dir/catalog/stats_catalog.cc.o" "gcc" "src/CMakeFiles/epfis.dir/catalog/stats_catalog.cc.o.d"
  "/root/repo/src/epfis/est_io.cc" "src/CMakeFiles/epfis.dir/epfis/est_io.cc.o" "gcc" "src/CMakeFiles/epfis.dir/epfis/est_io.cc.o.d"
  "/root/repo/src/epfis/fpf_curve.cc" "src/CMakeFiles/epfis.dir/epfis/fpf_curve.cc.o" "gcc" "src/CMakeFiles/epfis.dir/epfis/fpf_curve.cc.o.d"
  "/root/repo/src/epfis/index_stats.cc" "src/CMakeFiles/epfis.dir/epfis/index_stats.cc.o" "gcc" "src/CMakeFiles/epfis.dir/epfis/index_stats.cc.o.d"
  "/root/repo/src/epfis/lru_fit.cc" "src/CMakeFiles/epfis.dir/epfis/lru_fit.cc.o" "gcc" "src/CMakeFiles/epfis.dir/epfis/lru_fit.cc.o.d"
  "/root/repo/src/epfis/trace_io.cc" "src/CMakeFiles/epfis.dir/epfis/trace_io.cc.o" "gcc" "src/CMakeFiles/epfis.dir/epfis/trace_io.cc.o.d"
  "/root/repo/src/exec/external_sort.cc" "src/CMakeFiles/epfis.dir/exec/external_sort.cc.o" "gcc" "src/CMakeFiles/epfis.dir/exec/external_sort.cc.o.d"
  "/root/repo/src/exec/index_scan.cc" "src/CMakeFiles/epfis.dir/exec/index_scan.cc.o" "gcc" "src/CMakeFiles/epfis.dir/exec/index_scan.cc.o.d"
  "/root/repo/src/exec/multi_index.cc" "src/CMakeFiles/epfis.dir/exec/multi_index.cc.o" "gcc" "src/CMakeFiles/epfis.dir/exec/multi_index.cc.o.d"
  "/root/repo/src/exec/optimizer.cc" "src/CMakeFiles/epfis.dir/exec/optimizer.cc.o" "gcc" "src/CMakeFiles/epfis.dir/exec/optimizer.cc.o.d"
  "/root/repo/src/exec/predicate.cc" "src/CMakeFiles/epfis.dir/exec/predicate.cc.o" "gcc" "src/CMakeFiles/epfis.dir/exec/predicate.cc.o.d"
  "/root/repo/src/exec/rid_list.cc" "src/CMakeFiles/epfis.dir/exec/rid_list.cc.o" "gcc" "src/CMakeFiles/epfis.dir/exec/rid_list.cc.o.d"
  "/root/repo/src/exec/table_scan.cc" "src/CMakeFiles/epfis.dir/exec/table_scan.cc.o" "gcc" "src/CMakeFiles/epfis.dir/exec/table_scan.cc.o.d"
  "/root/repo/src/harness/contention.cc" "src/CMakeFiles/epfis.dir/harness/contention.cc.o" "gcc" "src/CMakeFiles/epfis.dir/harness/contention.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/epfis.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/epfis.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/figures.cc" "src/CMakeFiles/epfis.dir/harness/figures.cc.o" "gcc" "src/CMakeFiles/epfis.dir/harness/figures.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/CMakeFiles/epfis.dir/index/btree.cc.o" "gcc" "src/CMakeFiles/epfis.dir/index/btree.cc.o.d"
  "/root/repo/src/index/btree_iterator.cc" "src/CMakeFiles/epfis.dir/index/btree_iterator.cc.o" "gcc" "src/CMakeFiles/epfis.dir/index/btree_iterator.cc.o.d"
  "/root/repo/src/index/btree_node.cc" "src/CMakeFiles/epfis.dir/index/btree_node.cc.o" "gcc" "src/CMakeFiles/epfis.dir/index/btree_node.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/epfis.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/epfis.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/record.cc" "src/CMakeFiles/epfis.dir/storage/record.cc.o" "gcc" "src/CMakeFiles/epfis.dir/storage/record.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/epfis.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/epfis.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/CMakeFiles/epfis.dir/storage/slotted_page.cc.o" "gcc" "src/CMakeFiles/epfis.dir/storage/slotted_page.cc.o.d"
  "/root/repo/src/storage/table_heap.cc" "src/CMakeFiles/epfis.dir/storage/table_heap.cc.o" "gcc" "src/CMakeFiles/epfis.dir/storage/table_heap.cc.o.d"
  "/root/repo/src/util/arg_parser.cc" "src/CMakeFiles/epfis.dir/util/arg_parser.cc.o" "gcc" "src/CMakeFiles/epfis.dir/util/arg_parser.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/epfis.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/epfis.dir/util/csv.cc.o.d"
  "/root/repo/src/util/fenwick.cc" "src/CMakeFiles/epfis.dir/util/fenwick.cc.o" "gcc" "src/CMakeFiles/epfis.dir/util/fenwick.cc.o.d"
  "/root/repo/src/util/formulas.cc" "src/CMakeFiles/epfis.dir/util/formulas.cc.o" "gcc" "src/CMakeFiles/epfis.dir/util/formulas.cc.o.d"
  "/root/repo/src/util/piecewise.cc" "src/CMakeFiles/epfis.dir/util/piecewise.cc.o" "gcc" "src/CMakeFiles/epfis.dir/util/piecewise.cc.o.d"
  "/root/repo/src/util/polynomial.cc" "src/CMakeFiles/epfis.dir/util/polynomial.cc.o" "gcc" "src/CMakeFiles/epfis.dir/util/polynomial.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/epfis.dir/util/random.cc.o" "gcc" "src/CMakeFiles/epfis.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/epfis.dir/util/status.cc.o" "gcc" "src/CMakeFiles/epfis.dir/util/status.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/epfis.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/epfis.dir/util/table_printer.cc.o.d"
  "/root/repo/src/util/zipf.cc" "src/CMakeFiles/epfis.dir/util/zipf.cc.o" "gcc" "src/CMakeFiles/epfis.dir/util/zipf.cc.o.d"
  "/root/repo/src/workload/data_gen.cc" "src/CMakeFiles/epfis.dir/workload/data_gen.cc.o" "gcc" "src/CMakeFiles/epfis.dir/workload/data_gen.cc.o.d"
  "/root/repo/src/workload/dataset.cc" "src/CMakeFiles/epfis.dir/workload/dataset.cc.o" "gcc" "src/CMakeFiles/epfis.dir/workload/dataset.cc.o.d"
  "/root/repo/src/workload/gwl.cc" "src/CMakeFiles/epfis.dir/workload/gwl.cc.o" "gcc" "src/CMakeFiles/epfis.dir/workload/gwl.cc.o.d"
  "/root/repo/src/workload/scan_gen.cc" "src/CMakeFiles/epfis.dir/workload/scan_gen.cc.o" "gcc" "src/CMakeFiles/epfis.dir/workload/scan_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
