file(REMOVE_RECURSE
  "libepfis.a"
)
